(** Streaming time-series: windowed snapshot/diff aggregation over a
    {!Metrics} registry, emitted as JSON values (one per completed
    window) on a caller-driven virtual clock.

    The producer calls {!advance} with the current virtual time as it
    processes work; whenever the clock crosses a window boundary the
    stream snapshots the registry, diffs it against the previous window
    boundary, and emits one ["window"] line carrying per-interval
    counter deltas, gauge tracks, histogram deltas with nearest-rank
    percentiles, and an SLO burn rate.  Because the clock is virtual
    and the producer is a serial simulation, the emitted stream is
    byte-identical across [--jobs] values.

    Burn rate: [violatedΔ / max 1 (violatedΔ + metΔ)] over the window,
    computed from two counters (by default the service's
    ["service/slo/violated"] and ["service/slo/met"]).  It is always
    present on a window line — 0.0 when no SLO-tracked request
    completed in the window. *)

type t

val default_window : int
(** 100_000 virtual ticks. *)

val create :
  ?window:int ->
  ?burn_violated:string ->
  ?burn_met:string ->
  metrics:Metrics.t ->
  emit:(Json.t -> unit) ->
  unit ->
  t
(** The stream takes its first base snapshot at creation, so counters
    accumulated before [create] never leak into the first window. *)

val advance : t -> now:int -> unit
(** Emit every window that [now] has fully passed.  Idempotent for a
    non-advancing clock. *)

val finish : t -> now:int -> unit
(** Emit any trailing partial window up to [now].  Always emits at
    least one window over the stream's lifetime. *)

val windows : t -> Metrics.snapshot list
(** The raw per-window snapshot diffs emitted so far, oldest first —
    folding {!Metrics.merge} over them equals the whole-run diff. *)

val event : t -> Flight_recorder.event -> unit
(** Emit a flight-recorder event as an interleaved
    [{"type":"event",...}] line on the same sink. *)
