(** The metrics registry: counters, gauges and log-scale histograms.

    A registry is a named set of instruments.  Instruments are obtained
    once (registration allocates) and then updated on hot paths; every
    update on an instrument of a disabled registry is a no-op that
    allocates nothing, so instrumented code can keep its hooks threaded
    unconditionally.  Instruments are safe to update from several
    domains at once (counters and gauges are atomics; histogram buckets
    are atomics too).

    Observability flows through {!snapshot}: an immutable, sorted view
    of every instrument, which can be diffed against an earlier snapshot
    (interval metrics), rendered as JSON, or pretty-printed. *)

type t

val create : unit -> t
(** A fresh, enabled registry. *)

val disabled : t
(** The shared null registry: registration returns no-op instruments. *)

val is_enabled : t -> bool

val scope : t -> string -> t
(** [scope t name] is a view of [t] in which every instrument name is
    prefixed with ["name/"].  Scoping the null registry is free. *)

(** {1 Instruments} *)

type counter

val counter : t -> string -> counter
(** Monotone counter.  Registration is idempotent: the same name in the
    same registry returns the same instrument.  Internally sharded
    across a small fixed-width array of atomics indexed by the updating
    domain's id, so concurrent [Exec.Pool] workers don't contend on one
    cache line; shards are summed at snapshot time. *)

val incr : counter -> unit

val add : counter -> int -> unit

type gauge

val gauge : t -> string -> gauge
(** Last-value instrument that also tracks the maximum ever set. *)

val set : gauge -> int -> unit

type histogram

val histogram : t -> string -> histogram
(** Log-scale (power-of-two bucket) histogram of non-negative integer
    observations: bucket [i] counts values [v] with [2^(i-1) <= v < 2^i]
    (bucket 0 counts zero). *)

val observe : histogram -> int -> unit

(** {1 Snapshots} *)

type value =
  | Counter of int
  | Gauge of { last : int; max : int }
  | Histogram of { count : int; sum : int; max : int; buckets : int array }

type snapshot = (string * value) list
(** Sorted by name. *)

val snapshot : t -> snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier]: the interval view.  Counters and histogram
    counts/sums subtract; gauges keep the later value.  Instruments
    absent from [earlier] appear as in [later]. *)

val merge : snapshot -> snapshot -> snapshot
(** [merge a b]: pointwise sum of two interval snapshots.  Counters and
    histogram counts/sums/buckets add, histogram maxima take the max,
    gauges keep [b]'s value (the later window).  Satisfies the window
    law: folding [merge] over consecutive {!diff} windows equals the
    whole-run diff. *)

val find : snapshot -> string -> value option

val absorb : t -> snapshot -> unit
(** Merge a snapshot (typically of a session-scoped registry) into [t]:
    counters and histogram counts/sums/buckets add; gauges take the
    snapshot's max then last.  Snapshot names are used verbatim — [t]'s
    scope prefix does not apply.  No-op on a disabled registry.  This is
    how per-request registries roll up into a server-wide one without
    sharing mutable instruments across sessions. *)

val to_json : snapshot -> Json.t

val pp : Format.formatter -> snapshot -> unit

val percentile : int array -> float -> int
(** [percentile buckets p] (0 <= p <= 1): an upper bound of the p-th
    percentile of a log-scale bucket array (the top edge of the bucket
    the nearest-rank order statistic falls in).  0 on an empty
    histogram; [p] outside [0, 1] (or NaN) clamps to the extreme order
    statistics, so [p = 1.0] is exactly the maximum bucket edge. *)
