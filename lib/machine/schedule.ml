(** Deterministic GC schedules for the VM's fault injector.

    The paper's hazard is a race: a collection must land in the narrow
    window between the overwrite of the last recognizable pointer and the
    final use of the derived one.  Rather than hoping an asynchronous
    collector hits the window, a schedule names the collection points
    outright, so a failing interleaving is reproducible bit for bit and a
    search over interleavings is just a loop over schedules.

    Safepoints are instruction boundaries: the VM's dynamic instruction
    counter after each executed instruction (terminators included) is the
    safepoint index, so index [k] means "collect immediately after the
    [k]th executed instruction". *)

type points = Bytes.t
(** A bit-set of safepoint indices. *)

let no_points : points = Bytes.empty

let points_of_list (l : int list) : points =
  let m = List.fold_left max (-1) l in
  if m < 0 then no_points
  else begin
    let b = Bytes.make ((m / 8) + 1) '\000' in
    List.iter
      (fun i ->
        if i >= 0 then
          Bytes.set b (i / 8)
            (Char.chr (Char.code (Bytes.get b (i / 8)) lor (1 lsl (i mod 8)))))
      l;
    b
  end

let points_mem (b : points) i =
  i >= 0
  && i / 8 < Bytes.length b
  && Char.code (Bytes.get b (i / 8)) land (1 lsl (i mod 8)) <> 0

let points_to_list (b : points) =
  let acc = ref [] in
  for i = (8 * Bytes.length b) - 1 downto 0 do
    if points_mem b i then acc := i :: !acc
  done;
  !acc

let points_cardinal b = List.length (points_to_list b)

type t =
  | Auto  (** no injected collections: allocation volume triggers only *)
  | Every of int  (** collect at every [n]th safepoint *)
  | At_allocs  (** collect at every allocation site *)
  | At of points  (** collect at exactly these safepoint indices *)

let at_list l = At (points_of_list l)

let to_string = function
  | Auto -> "auto"
  | Every n -> Printf.sprintf "every-%d" n
  | At_allocs -> "at-allocs"
  | At pts -> (
      match points_to_list pts with
      | [] -> "at:{}"
      | l ->
          Printf.sprintf "at:{%s}"
            (String.concat "," (List.map string_of_int l)))

(* the inverse of [to_string], for wire requests; a malformed spec is
   [None], never an exception *)
let of_string s =
  let prefix p = String.length s > String.length p && String.sub s 0 (String.length p) = p in
  let after p = String.sub s (String.length p) (String.length s - String.length p) in
  match s with
  | "auto" -> Some Auto
  | "at-allocs" -> Some At_allocs
  | _ when prefix "every-" -> (
      match int_of_string_opt (after "every-") with
      | Some n when n > 0 -> Some (Every n)
      | _ -> None)
  | "at:{}" -> Some (At no_points)
  | _ when prefix "at:{" && s.[String.length s - 1] = '}' -> (
      let body = String.sub s 4 (String.length s - 5) in
      let parts = String.split_on_char ',' body in
      let pts = List.map (fun p -> int_of_string_opt (String.trim p)) parts in
      if List.for_all (function Some k -> k >= 0 | None -> false) pts then
        Some (at_list (List.filter_map Fun.id pts))
      else None)
  | _ -> None
