(** The virtual machine: executes IR programs against the conservative
    collector, with per-machine cycle accounting.

    GC roots are what a conservative collector sees on a real machine:
    every frame's register file (stale values included), the VM stack and
    the statics region.  Collections trigger on allocation volume and —
    under an injected {!Schedule.t} — at deterministic safepoints: every
    Nth instruction boundary, every allocation, or an explicit bit-set of
    instruction indices.  Every load and store is checked against the heap
    map, so touching a prematurely collected object faults instead of
    silently reading poisoned memory.

    Resource exhaustion (step or heap ceiling) raises [Trap], distinct
    from [Fault]: running out of budget is a structured diagnostic, not a
    program error. *)

exception Fault of string

type trap_kind = Step_limit | Heap_limit

val trap_kind_name : trap_kind -> string

exception Trap of trap_kind * string
(** A resource ceiling was exceeded. *)

type config = {
  vm_machine : Machdesc.t;
  vm_gc_schedule : Schedule.t;  (** injected (forced) collection points *)
  vm_gc_at_calls_only : bool;
      (** restrict forced collections to call instructions — the
          environment assumed by the paper's optimization (4) *)
  vm_all_interior : bool;
      (** collector recognizes interior pointers everywhere (default);
          [false] reproduces the Extensions-section root-only mode *)
  vm_gc_threshold : int;  (** allocation volume between collections *)
  vm_gc_mode : Gcheap.Heap.gc_mode;
      (** [Stw] (default): full collections only, the paper's collector.
          [Gen]: generational — a store write-barrier feeds a
          page-granularity remembered set, minor collections run every
          [vm_gc_threshold / 8] allocated bytes and scan only young
          objects, roots and dirty cards; the major threshold tracks
          live growth.  [Inc]: incremental — marking cycles are
          snapshot-at-the-beginning, sliced into increments of at most
          [vm_gc_pause_budget] words of collector work run at allocation
          GC points; the same store barrier grays overwritten old values
          while a cycle is marking, and allocation during a cycle is
          black.  Cycle counts are identical in all modes (the barrier
          charges nothing), and injected/forced collections are always
          full majors (soundly abandoning any in-flight incremental
          cycle), so unsafe programs fail identically under injected
          schedules. *)
  vm_gc_pause_budget : int;
      (** incremental-mode pause budget: words of collector work per
          increment, on the deterministic VM-tick/words clock.  The
          atomic snapshot root scan and the atomic final mark may
          overrun it; overruns are counted in
          [vm/gc/incremental/budget_overruns]. *)
  vm_nursery_pages : int;
      (** bump-allocated nursery pages a generational or incremental
          heap may open between collections before a minor cycle is due
          ([0] disables the nursery — legacy shared-page allocation);
          ignored in stop-the-world mode *)
  vm_max_instrs : int;  (** step ceiling; exceeding it raises [Trap] *)
  vm_max_heap_bytes : int;
      (** arena footprint ceiling; exceeding it raises [Trap] *)
  vm_heap_limit_words : int;
      (** the allocator's hard ceiling in words ([0] = unlimited).
          Unlike [vm_max_heap_bytes] (a supervisory trap checked after
          the fact), this gates growth inside the heap and engages the
          [vm_oom_policy] recovery path; failures surface as
          {!Gcheap.Heap.Heap_exhausted} *)
  vm_oom_policy : Gcheap.Heap.oom_policy;
      (** allocation-failure response: trap immediately, or
          emergency-collect (a full cycle over the VM's real roots),
          retry, and expand within the limit (the default) *)
  vm_alloc_failpoints : Gcheap.Failpoint.t;
      (** injected allocation failures, mirroring [vm_gc_schedule];
          [Never] (the default) injects nothing *)
  vm_check_integrity : bool;
      (** run {!Gcheap.Heap.check_integrity} after every collection and
          raise {!Gcheap.Heap.Heap_corruption} on any violation *)
  vm_final_collect : bool;
      (** collect once after [main] returns so [r_live_objects] /
          [r_live_bytes] are comparable across schedules and builds *)
  vm_gc_point_sink : (int -> string -> unit) option;
      (** also called for every fired injected collection — unlike
          [r_gc_points], a sink observes points even when the run later
          faults, which is what the schedule shrinker replays *)
  vm_stack_bytes : int;
  vm_telemetry : Telemetry.Sink.t option;
      (** metrics (instrument scope ["vm/..."]: steps, dispatch by opcode
          class, GC pause/scan/free, alloc-size histogram, fault/trap
          counts), span tracing ([vm.run] and per-collection [gc] spans,
          fault/trap instants, heap counter track), and allocation-site
          heap profiling (site ids [fn:callee#k], stable across
          [--analysis] variants).  A sink's flight recorder receives
          [gc.begin]/[gc.end] spans, [gc.step]/[gc.emergency] instants
          and [vm.fault]/[vm.trap] instants, timestamped on the
          executed-instruction clock.  [None] — the default — costs one
          dead-branch test per instruction. *)
  vm_census : bool;
      (** sample a {!Gcheap.Census} after every completed collection
          (incremental cycles included) into [r_census]; off by
          default *)
}

val default_config : ?machine:Machdesc.t -> unit -> config

type result = {
  r_exit : int;
  r_output : string;
  r_instrs : int;
  r_cycles : int;
  r_gc_count : int;
  r_heap : Gcheap.Heap.stats;
  r_gc_points : (int * string) list;
      (** injected collections that fired, in execution order: safepoint
          index and a program-location description *)
  r_live_objects : int;  (** collectable objects alive at exit *)
  r_live_bytes : int;  (** their requested bytes *)
  r_gc_max_pause_words : int;
      (** largest single GC pause of the run on the deterministic
          words-of-work clock (stop-the-world/generational: per cycle;
          incremental: per increment).  Tracked unconditionally — it is
          how service latency attributes a GC share even when telemetry
          is off, and the one pause measure that responds to
          [vm_gc_pause_budget] *)
  r_gc_total_pause_words : int;
  r_census : Gcheap.Census.t list;
      (** per-collection heap censuses, oldest first; empty unless
          [vm_census] *)
}

exception Exit_program of int

val run : ?config:config -> ?args:int list -> Ir.Instr.program -> result
(** Run [main] to completion.
    @raise Fault on memory-safety violations or runtime errors.
    @raise Trap when a resource ceiling is exceeded.
    @raise Gcheap.Heap.Heap_corruption when [vm_check_integrity] is set and
    the sanitizer finds a violation. *)
