(** Deterministic GC schedules for the VM's fault injector.

    Safepoints are instruction boundaries: index [k] means "collect
    immediately after the [k]th executed instruction".  Explicit schedules
    are bit-sets, so membership during execution is O(1) and a shrinker can
    manipulate schedules as plain point lists. *)

type points
(** A bit-set of safepoint indices. *)

val no_points : points

val points_of_list : int list -> points
(** Negative indices are ignored. *)

val points_mem : points -> int -> bool

val points_to_list : points -> int list
(** Ascending order. *)

val points_cardinal : points -> int

type t =
  | Auto  (** no injected collections: allocation volume triggers only *)
  | Every of int  (** collect at every [n]th safepoint *)
  | At_allocs  (** collect at every allocation site *)
  | At of points  (** collect at exactly these safepoint indices *)

val at_list : int list -> t

val to_string : t -> string

val of_string : string -> t option
(** Inverse of {!to_string} ("auto", "every-N", "at-allocs",
    "at:\{k,k,...\}"); [None] on a malformed spec. *)
