(** The virtual machine: executes IR programs against the conservative
    collector, with per-machine cycle accounting.

    GC roots are exactly what a conservative collector sees on a real
    machine: every frame's register file (stale values included — that is
    what makes conservative GC usually safe even for unannotated code), the
    VM stack region and the statics region (both uncollectable heap blocks,
    scanned as roots by {!Gcheap.Heap.collect}).

    Collections are triggered by allocation volume, and — when
    [vm_gc_schedule] injects them — at deterministic safepoints: every Nth
    instruction boundary, every allocation, or an explicit bit-set of
    instruction indices.  The dense modes model the paper's "multiple
    threads of control" assumption under which a collection may be
    triggered asynchronously; the explicit mode makes a specific
    interleaving reproducible, which is what the stress harness searches
    and shrinks over.

    Every load and store is checked against the heap map, so touching a
    prematurely collected (swept and poisoned) object is reported as a
    [GC safety violation] rather than silently reading garbage.

    Resource ceilings (instruction budget, heap footprint) raise [Trap]
    rather than [Fault]: exhausting a budget is a structured diagnostic,
    not a program error. *)

open Ir.Instr

exception Fault of string

type trap_kind = Step_limit | Heap_limit

let trap_kind_name = function
  | Step_limit -> "step-limit"
  | Heap_limit -> "heap-limit"

exception Trap of trap_kind * string

type config = {
  vm_machine : Machdesc.t;
  vm_gc_schedule : Schedule.t;  (** injected (forced) collection points *)
  vm_gc_at_calls_only : bool;
      (** restrict forced collections to call instructions — the
          environment assumed by the paper's optimization (4) *)
  vm_all_interior : bool;
      (** collector recognizes interior pointers everywhere (default); off
          reproduces the Extensions-section root-only mode *)
  vm_gc_threshold : int;  (** allocation volume between collections *)
  vm_gc_mode : Gcheap.Heap.gc_mode;
      (** [Stw] (default): full collections only, the paper's collector.
          [Gen]: generational — the store barrier feeds a page-granularity
          remembered set, minor collections run every
          [vm_gc_threshold / 8] allocated bytes, and the major threshold
          tracks live growth.  [Inc]: incremental — marking cycles are
          snapshot-at-the-beginning, time-sliced into steps of at most
          [vm_gc_pause_budget] words of collector work at allocation GC
          points; the same store barrier grays overwritten old values
          while a cycle is marking.  Cycle counts are identical in all
          modes: the barrier charges nothing. *)
  vm_gc_pause_budget : int;
      (** incremental-mode pause budget: words of collector work per
          increment, on the deterministic VM-tick/words clock (the
          snapshot root scan and the atomic final mark may overrun it;
          overruns are counted) *)
  vm_nursery_pages : int;
      (** bump-allocated nursery pages a generational or incremental
          heap may open between collections before a minor cycle is due
          ([0] disables the nursery — legacy shared-page allocation);
          ignored in stop-the-world mode *)
  vm_max_instrs : int;  (** step ceiling; exceeding it raises [Trap] *)
  vm_max_heap_bytes : int;
      (** arena footprint ceiling; exceeding it raises [Trap] *)
  vm_heap_limit_words : int;
      (** the allocator's hard ceiling in words ([0] = unlimited).
          Unlike [vm_max_heap_bytes] (a supervisory trap checked after
          the fact), this limit gates growth inside the heap itself and
          engages the [vm_oom_policy] recovery path *)
  vm_oom_policy : Gcheap.Heap.oom_policy;
      (** allocation-failure response: trap, or emergency-collect,
          retry, and expand within the limit (the default) *)
  vm_alloc_failpoints : Gcheap.Failpoint.t;
      (** injected allocation failures, mirroring [vm_gc_schedule];
          [Never] (the default) injects nothing *)
  vm_check_integrity : bool;
      (** run the heap sanitizer after every collection; violations raise
          {!Gcheap.Heap.Heap_corruption} *)
  vm_final_collect : bool;
      (** collect once after [main] returns, so the result's live-heap
          summary is comparable across schedules and builds *)
  vm_gc_point_sink : (int -> string -> unit) option;
      (** also called for every fired injected collection — unlike
          [r_gc_points], a sink observes points even when the run later
          faults, which is what the schedule shrinker replays *)
  vm_stack_bytes : int;
  vm_telemetry : Telemetry.Sink.t option;
      (** metrics / span tracing / heap profiling; [None] costs one
          dead-branch test per instruction *)
  vm_census : bool;
      (** sample a {!Gcheap.Census} after every completed collection
          (incremental cycles included); off by default — sampling walks
          every block, so it is an observation knob, not part of the
          request identity *)
}

let default_config ?(machine = Machdesc.sparc10) () =
  {
    vm_machine = machine;
    vm_gc_schedule = Schedule.Auto;
    vm_gc_at_calls_only = false;
    vm_all_interior = true;
    vm_gc_threshold = 256 * 1024;
    vm_gc_mode = Gcheap.Heap.Stw;
    vm_gc_pause_budget = 1024;
    vm_nursery_pages = 8;
    vm_max_instrs = 400_000_000;
    vm_max_heap_bytes = 1 lsl 30;
    vm_heap_limit_words = 0;
    vm_oom_policy = Gcheap.Heap.Collect_expand;
    vm_alloc_failpoints = Gcheap.Failpoint.Never;
    vm_check_integrity = false;
    vm_final_collect = false;
    vm_gc_point_sink = None;
    vm_stack_bytes = 256 * 1024;
    vm_telemetry = None;
    vm_census = false;
  }

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

(* Alloc-call instructions are keyed by physical identity: the program
   structure is static during a run, and structurally equal calls at
   different sites must stay distinct. *)
module Instrtbl = Hashtbl.Make (struct
  type t = instr

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let alloc_builtin = function
  | "malloc" | "GC_malloc" | "GC_malloc_atomic" | "calloc" | "realloc" -> true
  | _ -> false

(* Site ids are [fn:callee#k] with [k] the ordinal of the call among
   same-callee alloc calls of the function, counted in static
   block-label order.  Annotation passes insert or remove [KeepLive]
   markers but never alloc calls, so ids join across
   [--analysis none|flow] builds of one program. *)
let site_table (p : program) =
  let tab = Instrtbl.create 64 in
  List.iter
    (fun (f : func) ->
      let ord = Hashtbl.create 8 in
      let blocks =
        List.sort (fun a b -> compare a.b_label b.b_label) f.fn_blocks
      in
      List.iter
        (fun b ->
          List.iter
            (fun i ->
              match i with
              | Call (_, callee, _) when alloc_builtin callee ->
                  let k =
                    Option.value ~default:0 (Hashtbl.find_opt ord callee)
                  in
                  Hashtbl.replace ord callee (k + 1);
                  Instrtbl.replace tab i
                    (Printf.sprintf "%s:%s#%d" f.fn_name callee k)
              | _ -> ())
            b.b_instrs)
        blocks)
    p.p_funcs;
  tab

let dispatch_class_names =
  [| "mov"; "alu"; "rel"; "load"; "store"; "push"; "call"; "keep_live";
     "branch" |]

let class_of_instr = function
  | Mov _ | Opaque _ -> 0
  | Bin _ -> 1
  | Rel _ -> 2
  | Load _ -> 3
  | Store _ -> 4
  | Push _ -> 5
  | Call _ -> 6
  | KeepLive _ -> 7

type tele = {
  tl_on : bool;
  tl_trace : Telemetry.Trace.t option;
  tl_prof : Telemetry.Heap_profiler.t option;
  tl_rec : Telemetry.Flight_recorder.t option;
  tl_steps : Telemetry.Metrics.counter;
  tl_dispatch : Telemetry.Metrics.counter array;  (** by {!class_of_instr} *)
  tl_gc : Telemetry.Metrics.counter;
  tl_gc_minor : Telemetry.Metrics.counter;
  tl_gc_emergency : Telemetry.Metrics.counter;
      (** collect-expand cycles run on allocation failure *)
  tl_gc_pause : Telemetry.Metrics.histogram;  (** nanoseconds *)
  tl_gc_minor_pause : Telemetry.Metrics.histogram;  (** nanoseconds *)
  tl_gc_major_pause : Telemetry.Metrics.histogram;  (** nanoseconds *)
  tl_gc_minor_scan : Telemetry.Metrics.histogram;
      (** pause work per minor cycle in words: words traced by mark plus
          words reclaimed by sweep — the deterministic "VM-tick" pause
          measure (no instructions retire during a collection, so the
          collector's word traffic is the pause) *)
  tl_gc_major_scan : Telemetry.Metrics.histogram;  (** per major cycle *)
  tl_gc_inc_pause : Telemetry.Metrics.histogram;
      (** per-increment pause in words of collector work (same clock as
          the scan histograms), incremental mode only *)
  tl_gc_inc_steps : Telemetry.Metrics.counter;  (** increments run *)
  tl_gc_inc_final : Telemetry.Metrics.counter;  (** atomic final marks *)
  tl_gc_inc_grays : Telemetry.Metrics.counter;
      (** old values the SATB barrier grayed *)
  tl_gc_inc_overruns : Telemetry.Metrics.counter;
      (** increments that exceeded the pause budget *)
  tl_gc_promoted : Telemetry.Metrics.counter;
  tl_gc_cards : Telemetry.Metrics.counter;  (** dirty cards scanned *)
  tl_gc_words : Telemetry.Metrics.counter;
  tl_gc_objs_freed : Telemetry.Metrics.counter;
  tl_gc_bytes_freed : Telemetry.Metrics.counter;
  tl_heap_foot : Telemetry.Metrics.gauge;
  tl_alloc_bytes : Telemetry.Metrics.histogram;
  tl_faults : Telemetry.Metrics.counter;
  tl_traps : Telemetry.Metrics.counter;
  tl_sites : string Instrtbl.t;
  mutable tl_cur_site : string;
}

let make_tele sink p =
  let m = Telemetry.Sink.metrics sink in
  let m = Telemetry.Metrics.scope m "vm" in
  let trace = match sink with Some s -> s.Telemetry.Sink.trace | None -> None in
  let prof =
    match sink with Some s -> s.Telemetry.Sink.profiler | None -> None
  in
  {
    tl_on = sink <> None;
    tl_trace = trace;
    tl_prof = prof;
    tl_rec = Telemetry.Sink.recorder sink;
    tl_steps = Telemetry.Metrics.counter m "steps";
    tl_dispatch =
      Array.map
        (fun c -> Telemetry.Metrics.counter m ("dispatch/" ^ c))
        dispatch_class_names;
    tl_gc = Telemetry.Metrics.counter m "gc/collections";
    tl_gc_minor = Telemetry.Metrics.counter m "gc/minor/collections";
    tl_gc_emergency = Telemetry.Metrics.counter m "gc/emergency_collections";
    tl_gc_pause = Telemetry.Metrics.histogram m "gc/pause_ns";
    tl_gc_minor_pause = Telemetry.Metrics.histogram m "gc/minor/pause_ns";
    tl_gc_major_pause = Telemetry.Metrics.histogram m "gc/major/pause_ns";
    tl_gc_minor_scan = Telemetry.Metrics.histogram m "gc/minor/pause_words";
    tl_gc_major_scan = Telemetry.Metrics.histogram m "gc/major/pause_words";
    tl_gc_inc_pause = Telemetry.Metrics.histogram m "gc/incremental/pause_words";
    tl_gc_inc_steps = Telemetry.Metrics.counter m "gc/incremental/increments";
    tl_gc_inc_final = Telemetry.Metrics.counter m "gc/incremental/final_marks";
    tl_gc_inc_grays = Telemetry.Metrics.counter m "gc/incremental/barrier_grays";
    tl_gc_inc_overruns =
      Telemetry.Metrics.counter m "gc/incremental/budget_overruns";
    tl_gc_promoted = Telemetry.Metrics.counter m "gc/promotions";
    tl_gc_cards = Telemetry.Metrics.counter m "gc/cards_scanned";
    tl_gc_words = Telemetry.Metrics.counter m "gc/words_scanned";
    tl_gc_objs_freed = Telemetry.Metrics.counter m "gc/objects_freed";
    tl_gc_bytes_freed = Telemetry.Metrics.counter m "gc/bytes_freed";
    tl_heap_foot = Telemetry.Metrics.gauge m "heap/footprint";
    tl_alloc_bytes = Telemetry.Metrics.histogram m "alloc/bytes";
    tl_faults = Telemetry.Metrics.counter m "faults";
    tl_traps = Telemetry.Metrics.counter m "traps";
    tl_sites = (match prof with Some _ -> site_table p | None -> Instrtbl.create 1);
    tl_cur_site = "?";
  }

type frame = {
  fr_func : func;
  fr_regs : int array;
  fr_base : int;  (** frame base address in the VM stack region *)
  fr_blocks : (label, block) Hashtbl.t;
  mutable fr_block : block;
  mutable fr_pc : instr list;  (** instructions left in the current block *)
  fr_dst : reg option;  (** caller register receiving our result *)
}

type state = {
  cfg : config;
  heap : Gcheap.Heap.t;
  funcs : (string, func) Hashtbl.t;
  statics_base : int;
  stack_base : int;
  mutable sp : int;  (** next free offset within the stack region *)
  mutable frames : frame list;  (** innermost first *)
  mutable depth : int;  (** call depth, for frames with empty frame areas *)
  out : Buffer.t;
  mutable instrs : int;
  mutable cycles : int;
  mutable gc_count : int;
  mutable inc_grays_seen : int;
      (** barrier grays already ticked into telemetry (incremental mode:
          the SATB barrier accrues during mutator time, between steps) *)
  mutable rand_state : int;
  mutable arg_queue : int list;  (** reversed: arguments pushed so far *)
  mutable at_call : bool;  (** the last executed instruction was a call *)
  mutable gc_points : (int * string) list;
      (** injected collections that actually fired: safepoint index and a
          program-location description (innermost first) *)
  mutable gc_max_pause_words : int;
      (** largest single GC pause this run, in words of collector work
          (stop-the-world/generational: per cycle; incremental: per
          step).  Tracked unconditionally — plain int stores off the
          cycle clock — so the service can attribute latency to GC even
          with telemetry off *)
  mutable gc_total_pause_words : int;
  mutable censuses : Gcheap.Census.t list;
      (** heap censuses sampled at collection boundaries when
          [vm_census]; reversed (newest first) *)
  tele : tele;
}

type result = {
  r_exit : int;
  r_output : string;
  r_instrs : int;
  r_cycles : int;
  r_gc_count : int;
  r_heap : Gcheap.Heap.stats;
  r_gc_points : (int * string) list;
      (** fired injected collections, in execution order *)
  r_live_objects : int;  (** collectable objects alive at exit *)
  r_live_bytes : int;  (** their requested bytes *)
  r_gc_max_pause_words : int;
      (** largest single GC pause, words of collector work; responds to
          the pause budget in incremental mode *)
  r_gc_total_pause_words : int;
  r_census : Gcheap.Census.t list;
      (** per-collection heap censuses (oldest first); empty unless
          [vm_census] *)
}

exception Exit_program of int

(* ------------------------------------------------------------------ *)
(* Setup                                                               *)
(* ------------------------------------------------------------------ *)

let load (cfg : config) (p : program) (statics_relocs : (int * int) list) :
    state =
  let heap_config = Gcheap.Heap.default_config () in
  heap_config.Gcheap.Heap.gc_threshold <- cfg.vm_gc_threshold;
  heap_config.Gcheap.Heap.all_interior <- cfg.vm_all_interior;
  heap_config.Gcheap.Heap.generational <- cfg.vm_gc_mode = Gcheap.Heap.Gen;
  heap_config.Gcheap.Heap.incremental <- cfg.vm_gc_mode = Gcheap.Heap.Inc;
  heap_config.Gcheap.Heap.pause_budget_words <- max 1 cfg.vm_gc_pause_budget;
  heap_config.Gcheap.Heap.minor_threshold <- max 1024 (cfg.vm_gc_threshold / 8);
  heap_config.Gcheap.Heap.nursery_pages <- max 0 cfg.vm_nursery_pages;
  heap_config.Gcheap.Heap.heap_limit_words <- cfg.vm_heap_limit_words;
  heap_config.Gcheap.Heap.oom_policy <- cfg.vm_oom_policy;
  let heap = Gcheap.Heap.create ~config:heap_config () in
  heap.Gcheap.Heap.failpoints <- cfg.vm_alloc_failpoints;
  let statics_base =
    Gcheap.Heap.alloc ~kind:Gcheap.Block.Uncollectable heap
      (max 8 (Bytes.length p.p_statics))
  in
  Bytes.iteri
    (fun i c ->
      Gcheap.Mem.store heap.Gcheap.Heap.mem ~width:1 (statics_base + i)
        (Char.code c))
    p.p_statics;
  List.iter
    (fun (slot, target) ->
      Gcheap.Mem.store_word heap.Gcheap.Heap.mem (statics_base + slot)
        (statics_base + target))
    statics_relocs;
  let stack_base =
    Gcheap.Heap.alloc ~kind:Gcheap.Block.Stack heap cfg.vm_stack_bytes
  in
  let funcs = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace funcs f.fn_name f) p.p_funcs;
  let tele = make_tele cfg.vm_telemetry p in
  (match tele.tl_prof with
  | Some pr ->
      heap.Gcheap.Heap.on_free <-
        Some (fun ~addr ~bytes:_ -> Telemetry.Heap_profiler.on_free pr ~addr)
  | None -> ());
  {
    cfg;
    heap;
    funcs;
    statics_base;
    stack_base;
    sp = 0;
    frames = [];
    depth = 0;
    out = Buffer.create 256;
    instrs = 0;
    cycles = 0;
    gc_count = 0;
    inc_grays_seen = 0;
    rand_state = 42;
    arg_queue = [];
    at_call = false;
    gc_points = [];
    gc_max_pause_words = 0;
    gc_total_pause_words = 0;
    censuses = [];
    tele;
  }

(* ------------------------------------------------------------------ *)
(* Collection                                                          *)
(* ------------------------------------------------------------------ *)

let collect ?(trigger = "auto") ?(generation = Gcheap.Heap.Major) st =
  let tl = st.tele in
  let minor = generation = Gcheap.Heap.Minor in
  let gen_name = if minor then "minor" else "major" in
  let t0 = if tl.tl_on then Unix.gettimeofday () else 0. in
  (match tl.tl_trace with
  | Some tr ->
      Telemetry.Trace.begin_span tr
        ~args:
          [
            ("trigger", Telemetry.Json.Str trigger);
            ("gen", Telemetry.Json.Str gen_name);
          ]
        "gc"
  | None -> ());
  (match tl.tl_rec with
  | Some fr ->
      Telemetry.Flight_recorder.record fr ~ts:st.instrs "gc.begin"
        [
          ("trigger", Telemetry.Json.Str trigger);
          ("gen", Telemetry.Json.Str gen_name);
        ]
  | None -> ());
  (match tl.tl_prof with
  | Some pr -> Telemetry.Heap_profiler.set_tick pr st.instrs
  | None -> ());
  let hs = st.heap.Gcheap.Heap.stats in
  let words0 = hs.Gcheap.Heap.words_scanned in
  let objs0 = hs.Gcheap.Heap.objects_freed in
  let bytes0 = hs.Gcheap.Heap.bytes_freed in
  let promoted0 = hs.Gcheap.Heap.promoted in
  let cards0 = hs.Gcheap.Heap.cards_scanned in
  st.gc_count <- st.gc_count + 1;
  let roots =
    List.concat_map (fun fr -> Array.to_list fr.fr_regs) st.frames
  in
  (* only the live prefix of the stack is scanned, as on a real machine *)
  let live_stack = (st.stack_base, st.stack_base + st.sp) in
  (* the gc.end event must land even if the collection raises (heap
     corruption under the sanitizer), so span nesting always balances *)
  Fun.protect
    ~finally:(fun () ->
      (* deterministic pause measure on the words-of-work clock: words
         the marker traced plus words the sweeper reclaimed.  Tracked
         unconditionally (plain int stores, no cycle impact) — this is
         the per-request GC share the service reports *)
      let pause_words =
        hs.Gcheap.Heap.words_scanned - words0
        + ((hs.Gcheap.Heap.bytes_freed - bytes0 + 7) / 8)
      in
      st.gc_max_pause_words <- max st.gc_max_pause_words pause_words;
      st.gc_total_pause_words <- st.gc_total_pause_words + pause_words;
      (match tl.tl_rec with
      | Some fr ->
          Telemetry.Flight_recorder.record fr ~ts:st.instrs "gc.end"
            [
              ("trigger", Telemetry.Json.Str trigger);
              ("gen", Telemetry.Json.Str gen_name);
              ("pause_words", Telemetry.Json.Int pause_words);
            ]
      | None -> ());
      if st.cfg.vm_census then
        st.censuses <- Gcheap.Census.take st.heap :: st.censuses)
    (fun () ->
      ignore
        (Gcheap.Heap.collect ~generation ~extra_roots:roots
           ~extra_ranges:[ live_stack ] st.heap));
  if tl.tl_on then begin
    let open Telemetry in
    Metrics.incr tl.tl_gc;
    if minor then Metrics.incr tl.tl_gc_minor;
    let pause_ns = Float.to_int ((Unix.gettimeofday () -. t0) *. 1e9) in
    Metrics.observe tl.tl_gc_pause pause_ns;
    Metrics.observe
      (if minor then tl.tl_gc_minor_pause else tl.tl_gc_major_pause)
      pause_ns;
    Metrics.observe
      (if minor then tl.tl_gc_minor_scan else tl.tl_gc_major_scan)
      (hs.Gcheap.Heap.words_scanned - words0
      + ((hs.Gcheap.Heap.bytes_freed - bytes0 + 7) / 8));
    Metrics.add tl.tl_gc_promoted (hs.Gcheap.Heap.promoted - promoted0);
    Metrics.add tl.tl_gc_cards (hs.Gcheap.Heap.cards_scanned - cards0);
    Metrics.add tl.tl_gc_words (hs.Gcheap.Heap.words_scanned - words0);
    Metrics.add tl.tl_gc_objs_freed (hs.Gcheap.Heap.objects_freed - objs0);
    Metrics.add tl.tl_gc_bytes_freed (hs.Gcheap.Heap.bytes_freed - bytes0);
    let foot = Gcheap.Heap.footprint st.heap in
    Metrics.set tl.tl_heap_foot foot;
    match tl.tl_trace with
    | Some tr ->
        Trace.end_span tr "gc";
        Trace.counter tr "heap"
          [
            ("footprint", foot);
            ( "live_bytes",
              hs.Gcheap.Heap.bytes_allocated - hs.Gcheap.Heap.bytes_freed );
          ]
    | None -> ()
  end;
  if st.cfg.vm_check_integrity then Gcheap.Heap.assert_integrity st.heap

(** Where execution currently stands, for reporting a collection point:
    innermost function, block, and the instruction just executed. *)
let point_context st =
  match st.frames with
  | [] -> "program exit"
  | fr :: _ ->
      let total = List.length fr.fr_block.b_instrs in
      let executed = total - List.length fr.fr_pc in
      let where =
        if executed = 0 then "block entry"
        else
          Format.asprintf "after %a" Ir.Instr.pp_instr
            (List.nth fr.fr_block.b_instrs (executed - 1))
      in
      Printf.sprintf "%s, L%d, %s" fr.fr_func.fn_name fr.fr_block.b_label
        where

let forced_collect st =
  let ctx = point_context st in
  st.gc_points <- (st.instrs, ctx) :: st.gc_points;
  Option.iter (fun sink -> sink st.instrs ctx) st.cfg.vm_gc_point_sink;
  collect ~trigger:"forced" st

(** Is an injected collection due at the current safepoint (the boundary
    after instruction [st.instrs])? *)
let forced_gc_due st =
  (match st.cfg.vm_gc_schedule with
  | Schedule.Auto | Schedule.At_allocs -> false
  | Schedule.Every n -> n > 0 && st.instrs mod n = 0
  | Schedule.At pts -> Schedule.points_mem pts st.instrs)
  && ((not st.cfg.vm_gc_at_calls_only) || st.at_call)

(** One increment of the SATB marker, at an allocation GC point.  Same
    root discipline as {!collect}: the register file as word values, the
    live stack prefix as a range. *)
let incremental_step st =
  let tl = st.tele in
  let hs = st.heap.Gcheap.Heap.stats in
  let collections0 = hs.Gcheap.Heap.collections in
  let final0 = hs.Gcheap.Heap.final_marks in
  let overruns0 = hs.Gcheap.Heap.budget_overruns in
  let objs0 = hs.Gcheap.Heap.objects_freed in
  let bytes0 = hs.Gcheap.Heap.bytes_freed in
  (match tl.tl_prof with
  | Some pr -> Telemetry.Heap_profiler.set_tick pr st.instrs
  | None -> ());
  let roots =
    List.concat_map (fun fr -> Array.to_list fr.fr_regs) st.frames
  in
  let live_stack = (st.stack_base, st.stack_base + st.sp) in
  let spent =
    Gcheap.Incremental.step ~extra_roots:roots ~extra_ranges:[ live_stack ]
      st.heap
  in
  let completed = hs.Gcheap.Heap.collections - collections0 in
  st.gc_count <- st.gc_count + completed;
  (* each increment is a mutator pause of [spent] words of work *)
  st.gc_max_pause_words <- max st.gc_max_pause_words spent;
  st.gc_total_pause_words <- st.gc_total_pause_words + spent;
  (match tl.tl_rec with
  | Some fr ->
      Telemetry.Flight_recorder.record fr ~ts:st.instrs "gc.step"
        [
          ("spent_words", Telemetry.Json.Int spent);
          ("completed", Telemetry.Json.Int completed);
        ]
  | None -> ());
  if st.cfg.vm_census && completed > 0 then
    st.censuses <- Gcheap.Census.take st.heap :: st.censuses;
  if tl.tl_on then begin
    let open Telemetry in
    Metrics.incr tl.tl_gc_inc_steps;
    Metrics.observe tl.tl_gc_inc_pause spent;
    Metrics.add tl.tl_gc_inc_final (hs.Gcheap.Heap.final_marks - final0);
    Metrics.add tl.tl_gc_inc_overruns
      (hs.Gcheap.Heap.budget_overruns - overruns0);
    (* barrier grays accrue during mutator time, between steps *)
    Metrics.add tl.tl_gc_inc_grays
      (hs.Gcheap.Heap.barrier_grays - st.inc_grays_seen);
    st.inc_grays_seen <- hs.Gcheap.Heap.barrier_grays;
    Metrics.add tl.tl_gc_words spent;
    Metrics.add tl.tl_gc_objs_freed (hs.Gcheap.Heap.objects_freed - objs0);
    Metrics.add tl.tl_gc_bytes_freed (hs.Gcheap.Heap.bytes_freed - bytes0);
    if completed > 0 then begin
      Metrics.add tl.tl_gc completed;
      Metrics.set tl.tl_heap_foot (Gcheap.Heap.footprint st.heap)
    end
  end;
  if completed > 0 && st.cfg.vm_check_integrity then
    Gcheap.Heap.assert_integrity st.heap

let maybe_collect_for_alloc st =
  match st.cfg.vm_gc_schedule with
  | Schedule.At_allocs -> forced_collect st
  | _ ->
      if st.cfg.vm_gc_mode = Gcheap.Heap.Inc then begin
        if
          Gcheap.Incremental.active st.heap
          || Gcheap.Heap.should_collect st.heap
        then incremental_step st
      end
      else if Gcheap.Heap.should_collect st.heap then collect st
      else if Gcheap.Heap.should_collect_minor st.heap then
        collect ~generation:Gcheap.Heap.Minor st

let check_heap_ceiling st =
  let used = Gcheap.Heap.footprint st.heap in
  if used > st.cfg.vm_max_heap_bytes then
    raise
      (Trap
         ( Heap_limit,
           Printf.sprintf "heap ceiling exceeded: %d bytes in use, limit %d"
             used st.cfg.vm_max_heap_bytes ))

(* ------------------------------------------------------------------ *)
(* Frames                                                              *)
(* ------------------------------------------------------------------ *)

let push_frame st (f : func) (args : int list) (dst : reg option) =
  let frame_size = (f.fn_frame + 15) / 16 * 16 in
  st.depth <- st.depth + 1;
  if
    st.sp + frame_size > st.cfg.vm_stack_bytes
    || st.depth > st.cfg.vm_stack_bytes / 64
  then raise (Fault "stack overflow");
  let base = st.stack_base + st.sp in
  st.sp <- st.sp + frame_size;
  let regs = Array.make (max f.fn_nreg 1) 0 in
  regs.(fp) <- base;
  (try
     List.iter2 (fun r v -> regs.(r) <- v) f.fn_params args
   with Invalid_argument _ ->
     raise (Fault (Printf.sprintf "arity mismatch calling %s" f.fn_name)));
  let blocks = Hashtbl.create 8 in
  List.iter (fun b -> Hashtbl.replace blocks b.b_label b) f.fn_blocks;
  let entry = List.hd f.fn_blocks in
  st.frames <-
    {
      fr_func = f;
      fr_regs = regs;
      fr_base = base;
      fr_blocks = blocks;
      fr_block = entry;
      fr_pc = entry.b_instrs;
      fr_dst = dst;
    }
    :: st.frames

let pop_frame st (ret : int) =
  match st.frames with
  | [] -> raise (Fault "return with no frame")
  | fr :: rest ->
      let frame_size = (fr.fr_func.fn_frame + 15) / 16 * 16 in
      (* clear the dead frame so stale locals do not linger as roots *)
      if frame_size > 0 then
        Gcheap.Mem.fill st.heap.Gcheap.Heap.mem fr.fr_base frame_size '\000';
      st.sp <- st.sp - frame_size;
      st.depth <- st.depth - 1;
      st.frames <- rest;
      (match (fr.fr_dst, rest) with
      | Some d, caller :: _ -> caller.fr_regs.(d) <- ret
      | _, _ -> ());
      (match rest with [] -> raise (Exit_program ret) | _ -> ())

(* ------------------------------------------------------------------ *)
(* Memory access with safety checking                                  *)
(* ------------------------------------------------------------------ *)

let check_access st addr len what =
  if not (Gcheap.Heap.valid_access st.heap addr len) then
    raise
      (Fault
         (Printf.sprintf
            "GC safety violation: %s of %d byte(s) at %#x hits unallocated \
             or collected memory"
            what len addr));
  match st.tele.tl_prof with
  | Some pr -> (
      (* last-use tracking: resolve to the object base.  [extent_of]
         touches no heap counters, so profiling leaves stats intact. *)
      match Gcheap.Heap.extent_of st.heap addr with
      | Some (base, _) ->
          Telemetry.Heap_profiler.set_tick pr st.instrs;
          Telemetry.Heap_profiler.on_use pr ~addr:base
      | None -> ())
  | None -> ()

let load_mem st width addr =
  check_access st addr (bytes_of_width width) "load";
  Gcheap.Mem.load st.heap.Gcheap.Heap.mem ~width:(bytes_of_width width) addr

let store_mem st width addr v =
  check_access st addr (bytes_of_width width) "store";
  (* generational write barrier; charges no cycles in either gc mode *)
  Gcheap.Heap.note_store st.heap addr (bytes_of_width width);
  Gcheap.Mem.store st.heap.Gcheap.Heap.mem ~width:(bytes_of_width width) addr v

(* ------------------------------------------------------------------ *)
(* Builtins                                                            *)
(* ------------------------------------------------------------------ *)

let cstring st addr =
  check_access st addr 1 "string read";
  Gcheap.Mem.load_cstring st.heap.Gcheap.Heap.mem addr

let charge st n = st.cycles <- st.cycles + n

let alloc ?kind st n =
  maybe_collect_for_alloc st;
  let a = Gcheap.Heap.alloc ?kind st.heap (max n 1) in
  if st.tele.tl_on then begin
    Telemetry.Metrics.observe st.tele.tl_alloc_bytes (max n 1);
    match st.tele.tl_prof with
    | Some pr ->
        Telemetry.Heap_profiler.set_tick pr st.instrs;
        Telemetry.Heap_profiler.on_alloc pr ~site:st.tele.tl_cur_site ~addr:a
          ~bytes:(max n 1)
    | None -> ()
  end;
  check_heap_ceiling st;
  a

(* printf with the subset of conversions the workloads use *)
let do_printf st fmt args =
  let args = ref args in
  let next () =
    match !args with
    | [] -> raise (Fault "printf: not enough arguments")
    | a :: rest ->
        args := rest;
        a
  in
  let n = String.length fmt in
  let buf = Buffer.create 32 in
  let rec loop i =
    if i < n then
      if fmt.[i] = '%' && i + 1 < n then begin
        (match fmt.[i + 1] with
        | 'd' | 'i' -> Buffer.add_string buf (string_of_int (next ()))
        | 'l' ->
            (* %ld *)
            Buffer.add_string buf (string_of_int (next ()))
        | 'x' -> Buffer.add_string buf (Printf.sprintf "%x" (next ()))
        | 'c' -> Buffer.add_char buf (Char.chr (next () land 0xff))
        | 's' -> Buffer.add_string buf (cstring st (next ()))
        | 'p' -> Buffer.add_string buf (Printf.sprintf "0x%x" (next ()))
        | '%' -> Buffer.add_char buf '%'
        | c -> raise (Fault (Printf.sprintf "printf: unsupported %%%c" c)));
        let skip =
          match fmt.[i + 1] with
          | 'l' when i + 2 < n && (fmt.[i + 2] = 'd' || fmt.[i + 2] = 'u') -> 3
          | _ -> 2
        in
        loop (i + skip)
      end
      else begin
        Buffer.add_char buf fmt.[i];
        loop (i + 1)
      end
  in
  loop 0;
  Buffer.add_buffer st.out buf;
  Buffer.length buf

let builtin st name (args : int list) : int =
  let m = st.cfg.vm_machine in
  charge st m.Machdesc.md_cost_call;
  match (name, args) with
  | ("malloc" | "GC_malloc"), [ n ] ->
      charge st 40;
      alloc st n
  | "GC_malloc_atomic", [ n ] ->
      charge st 40;
      alloc ~kind:Gcheap.Block.Atomic st n
  | "calloc", [ a; b ] ->
      charge st 45;
      alloc st (a * b)
  | "realloc", [ p; n ] ->
      charge st 50;
      if p = 0 then alloc st n
      else begin
        let fresh = alloc st n in
        (match Gcheap.Heap.extent_of st.heap p with
        | Some (base, size) ->
            let old_len = size - (p - base) in
            let len = min n old_len in
            charge st (len / 8);
            Gcheap.Heap.note_store st.heap fresh len;
            Gcheap.Mem.blit st.heap.Gcheap.Heap.mem ~src:p ~dst:fresh len
        | None -> raise (Fault "realloc of non-heap pointer"));
        fresh
      end
  | "free", [ _ ] -> 0 (* removed: the collector reclaims *)
  | "GC_base", [ p ] ->
      charge st 6;
      Option.value ~default:0 (Gcheap.Heap.base_of st.heap p)
  | "GC_same_obj", [ p; q ] -> (
      charge st 15;
      try Gcheap.Heap.same_obj st.heap p q
      with Gcheap.Heap.Check_failure msg -> raise (Fault msg))
  | "GC_check_range", [ p; n ] -> (
      charge st 10;
      try Gcheap.Heap.check_range st.heap p n
      with Gcheap.Heap.Check_failure msg -> raise (Fault msg))
  | "GC_check_base", [ v ] -> (
      charge st 8;
      try Gcheap.Heap.check_base st.heap v
      with Gcheap.Heap.Check_failure msg -> raise (Fault msg))
  | "GC_pre_incr", [ pp; delta ] -> (
      charge st 18;
      check_access st pp 8 "GC_pre_incr";
      Gcheap.Heap.note_store st.heap pp 8;
      try Gcheap.Heap.pre_incr st.heap pp delta
      with Gcheap.Heap.Check_failure msg -> raise (Fault msg))
  | "GC_post_incr", [ pp; delta ] -> (
      charge st 18;
      check_access st pp 8 "GC_post_incr";
      Gcheap.Heap.note_store st.heap pp 8;
      try Gcheap.Heap.post_incr st.heap pp delta
      with Gcheap.Heap.Check_failure msg -> raise (Fault msg))
  | "GC_collect", [] ->
      collect ~trigger:"explicit" st;
      0
  | "strlen", [ s ] ->
      let v = String.length (cstring st s) in
      charge st (2 * v);
      v
  | "strcpy", [ d; s ] ->
      let v = cstring st s in
      charge st (2 * String.length v);
      check_access st d (String.length v + 1) "strcpy";
      Gcheap.Heap.note_store st.heap d (String.length v + 1);
      Gcheap.Mem.store_cstring st.heap.Gcheap.Heap.mem d v;
      d
  | "strcat", [ d; s ] ->
      let dv = cstring st d and sv = cstring st s in
      charge st (2 * (String.length dv + String.length sv));
      check_access st (d + String.length dv) (String.length sv + 1) "strcat";
      Gcheap.Heap.note_store st.heap (d + String.length dv)
        (String.length sv + 1);
      Gcheap.Mem.store_cstring st.heap.Gcheap.Heap.mem (d + String.length dv) sv;
      d
  | "strcmp", [ a; b ] ->
      let av = cstring st a and bv = cstring st b in
      charge st (2 * min (String.length av) (String.length bv));
      compare av bv
  | "strncmp", [ a; b; n ] ->
      let take s = if String.length s > n then String.sub s 0 n else s in
      let av = take (cstring st a) and bv = take (cstring st b) in
      charge st (2 * n);
      compare av bv
  | "strchr", [ s; c ] -> (
      let v = cstring st s in
      charge st (2 * String.length v);
      match String.index_opt v (Char.chr (c land 0xff)) with
      | Some i -> s + i
      | None -> 0)
  | ("memcpy" | "memmove"), [ d; s; n ] ->
      charge st (max 4 (n / 4));
      if n > 0 then begin
        check_access st d n "memcpy dst";
        check_access st s n "memcpy src";
        Gcheap.Heap.note_store st.heap d n;
        Gcheap.Mem.blit st.heap.Gcheap.Heap.mem ~src:s ~dst:d n
      end;
      d
  | "memset", [ d; c; n ] ->
      charge st (max 4 (n / 4));
      if n > 0 then begin
        check_access st d n "memset";
        Gcheap.Heap.note_store st.heap d n;
        Gcheap.Mem.fill st.heap.Gcheap.Heap.mem d n (Char.chr (c land 0xff))
      end;
      d
  | "putchar", [ c ] ->
      charge st 10;
      Buffer.add_char st.out (Char.chr (c land 0xff));
      c
  | "puts", [ s ] ->
      let v = cstring st s in
      charge st (10 + String.length v);
      Buffer.add_string st.out v;
      Buffer.add_char st.out '\n';
      0
  | "print_int", [ v ] ->
      charge st 10;
      Buffer.add_string st.out (string_of_int v);
      0
  | "print_str", [ s ] ->
      let v = cstring st s in
      charge st (10 + String.length v);
      Buffer.add_string st.out v;
      0
  | "printf", fmt_addr :: rest ->
      let fmt = cstring st fmt_addr in
      charge st (10 + String.length fmt);
      do_printf st fmt rest
  | "abort", [] -> raise (Fault "abort() called")
  | "exit", [ code ] -> raise (Exit_program code)
  | "rand", [] ->
      st.rand_state <- (st.rand_state * 1103515245) + 12345;
      (st.rand_state asr 16) land 0x3fffffff
  | "srand", [ seed ] ->
      st.rand_state <- seed;
      0
  | "abs", [ v ] -> abs v
  | "assert_true", [ v ] ->
      if v = 0 then raise (Fault "assertion failed");
      0
  | "fread", _ -> 0
  | "scanf", _ -> raise (Fault "scanf is not executable in the VM")
  | _ ->
      raise
        (Fault
           (Printf.sprintf "unknown builtin %s/%d" name (List.length args)))

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let operand st fr = function
  | Reg r -> fr.fr_regs.(r)
  | Imm n -> n
  | Glob off -> st.statics_base + off

let eval_bin op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then raise (Fault "division by zero") else a / b
  | Mod -> if b = 0 then raise (Fault "division by zero") else a mod b
  | Shl -> a lsl (b land 63)
  | Shr -> a asr (b land 63)
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b

let eval_rel op a b =
  let r =
    match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b
  in
  if r then 1 else 0

let instr_cost st fr (i : instr) =
  let m = st.cfg.vm_machine in
  match i with
  | Mov _ | Opaque _ -> m.Machdesc.md_cost_mov
  | Bin (op, d, a, _) ->
      let base =
        match op with
        | Mul -> m.Machdesc.md_cost_mul
        | Div | Mod -> m.Machdesc.md_cost_div
        | _ -> m.Machdesc.md_cost_alu
      in
      (* two-operand machines need a move when dst <> first source *)
      let penalty =
        if m.Machdesc.md_two_operand && a <> Reg d then
          m.Machdesc.md_cost_mov
        else 0
      in
      ignore fr;
      base + penalty
  | Rel _ -> m.Machdesc.md_cost_alu + 1
  | Load _ -> m.Machdesc.md_cost_load
  | Store _ -> m.Machdesc.md_cost_store
  | Push _ -> m.Machdesc.md_cost_mov
  | Call _ -> 0 (* overhead charged at dispatch, body separately *)
  | KeepLive _ -> 0

let rec step st =
  match st.frames with
  | [] -> raise (Fault "no frame")
  | fr :: _ -> (
      match fr.fr_pc with
      | i :: rest ->
          fr.fr_pc <- rest;
          st.instrs <- st.instrs + 1;
          st.cycles <- st.cycles + instr_cost st fr i;
          st.at_call <- (match i with Call _ -> true | _ -> false);
          if st.tele.tl_on then begin
            Telemetry.Metrics.incr st.tele.tl_steps;
            Telemetry.Metrics.incr st.tele.tl_dispatch.(class_of_instr i);
            match st.tele.tl_prof with
            | Some _ -> (
                match Instrtbl.find_opt st.tele.tl_sites i with
                | Some site -> st.tele.tl_cur_site <- site
                | None -> ())
            | None -> ()
          end;
          (match i with
          | Mov (d, s) -> fr.fr_regs.(d) <- operand st fr s
          | Opaque (d, s) -> fr.fr_regs.(d) <- operand st fr s
          | Bin (op, d, a, b) ->
              fr.fr_regs.(d) <- eval_bin op (operand st fr a) (operand st fr b)
          | Rel (op, d, a, b) ->
              fr.fr_regs.(d) <- eval_rel op (operand st fr a) (operand st fr b)
          | Load (w, d, base, off) ->
              fr.fr_regs.(d) <-
                load_mem st w (operand st fr base + operand st fr off)
          | Store (w, src, base, off) ->
              store_mem st w
                (operand st fr base + operand st fr off)
                (operand st fr src)
          | KeepLive _ -> ()
          | Push v -> st.arg_queue <- operand st fr v :: st.arg_queue
          | Call (dst, fname, nargs) -> (
              let vargs =
                let rec take n acc q =
                  if n = 0 then (acc, q)
                  else
                    match q with
                    | v :: rest -> take (n - 1) (v :: acc) rest
                    | [] -> raise (Fault "argument queue underflow")
                in
                let args, rest = take nargs [] st.arg_queue in
                st.arg_queue <- rest;
                args
              in
              match Hashtbl.find_opt st.funcs fname with
              | Some f ->
                  st.cycles <- st.cycles + st.cfg.vm_machine.Machdesc.md_cost_call;
                  push_frame st f vargs dst
              | None ->
                  let r = builtin st fname vargs in
                  Option.iter (fun d -> fr.fr_regs.(d) <- r) dst))
      | [] ->
          (* terminator *)
          st.instrs <- st.instrs + 1;
          st.cycles <- st.cycles + st.cfg.vm_machine.Machdesc.md_cost_branch;
          if st.tele.tl_on then begin
            Telemetry.Metrics.incr st.tele.tl_steps;
            Telemetry.Metrics.incr st.tele.tl_dispatch.(8)
          end;
          (match fr.fr_block.b_term with
          | Jmp l -> jump st fr l
          | Br (c, l1, l2) ->
              if operand st fr c <> 0 then jump st fr l1 else jump st fr l2
          | Ret v ->
              let rv = match v with Some o -> operand st fr o | None -> 0 in
              pop_frame st rv))

and jump st fr l =
  ignore st;
  match Hashtbl.find_opt fr.fr_blocks l with
  | Some b ->
      fr.fr_block <- b;
      fr.fr_pc <- b.b_instrs
  | None -> raise (Fault (Printf.sprintf "jump to unknown label L%d" l))

(** Run [main] to completion. *)
let run ?(config = default_config ()) ?(args = []) (p : program) : result =
  let st = load config p p.p_relocs in
  (* the allocator's emergency collections must see the VM's full root
     set (register files, live stack prefix), so route them through the
     collection wrapper rather than the heap's bare fallback *)
  st.heap.Gcheap.Heap.on_oom <-
    Some
      (fun () ->
        if st.tele.tl_on then Telemetry.Metrics.incr st.tele.tl_gc_emergency;
        (match st.tele.tl_rec with
        | Some fr ->
            Telemetry.Flight_recorder.record fr ~ts:st.instrs "gc.emergency" []
        | None -> ());
        collect ~trigger:"emergency" st);
  (match Hashtbl.find_opt st.funcs "main" with
  | Some f -> push_frame st f args None
  | None -> raise (Fault "no main function"));
  let tl = st.tele in
  let finally () =
    (* faulting runs still get a closed trace and a finished profile *)
    (match tl.tl_prof with
    | Some pr ->
        Telemetry.Heap_profiler.set_tick pr st.instrs;
        Telemetry.Heap_profiler.finish pr
    | None -> ());
    match tl.tl_trace with
    | Some tr -> Telemetry.Trace.end_span tr "vm.run"
    | None -> ()
  in
  (match tl.tl_trace with
  | Some tr ->
      Telemetry.Trace.begin_span tr
        ~args:[ ("machine", Telemetry.Json.Str config.vm_machine.Machdesc.md_name) ]
        "vm.run"
  | None -> ());
  Fun.protect ~finally @@ fun () ->
  let exit_code = ref 0 in
  (try
     while true do
       step st;
       if forced_gc_due st then forced_collect st;
       if st.instrs > config.vm_max_instrs then
         raise
           (Trap
              ( Step_limit,
                Printf.sprintf "instruction budget exceeded (%d steps)"
                  config.vm_max_instrs ))
     done
   with
  | Exit_program code -> exit_code := code
  | Fault msg as e when tl.tl_on ->
      Telemetry.Metrics.incr tl.tl_faults;
      (match tl.tl_rec with
      | Some fr ->
          Telemetry.Flight_recorder.record fr ~ts:st.instrs "vm.fault"
            [ ("msg", Telemetry.Json.Str msg) ]
      | None -> ());
      (match tl.tl_trace with
      | Some tr ->
          Telemetry.Trace.instant tr
            ~args:[ ("msg", Telemetry.Json.Str msg) ]
            "fault"
      | None -> ());
      raise e
  | Trap (kind, msg) as e when tl.tl_on ->
      Telemetry.Metrics.incr tl.tl_traps;
      (match tl.tl_rec with
      | Some fr ->
          Telemetry.Flight_recorder.record fr ~ts:st.instrs "vm.trap"
            [
              ("kind", Telemetry.Json.Str (trap_kind_name kind));
              ("msg", Telemetry.Json.Str msg);
            ]
      | None -> ());
      (match tl.tl_trace with
      | Some tr ->
          Telemetry.Trace.instant tr
            ~args:
              [
                ("kind", Telemetry.Json.Str (trap_kind_name kind));
                ("msg", Telemetry.Json.Str msg);
              ]
            "trap"
      | None -> ());
      raise e);
  if config.vm_final_collect then begin
    (* all frames are gone: only statics-reachable objects survive *)
    collect ~trigger:"final" st;
    st.gc_count <- st.gc_count - 1 (* not a program-visible collection *)
  end;
  (* sync barrier grays that accrued since the last increment *)
  if tl.tl_on then begin
    let hs = st.heap.Gcheap.Heap.stats in
    Telemetry.Metrics.add tl.tl_gc_inc_grays
      (hs.Gcheap.Heap.barrier_grays - st.inc_grays_seen);
    st.inc_grays_seen <- hs.Gcheap.Heap.barrier_grays
  end;
  let live_objects, live_bytes = Gcheap.Heap.live_summary st.heap in
  {
    r_exit = !exit_code;
    r_output = Buffer.contents st.out;
    r_instrs = st.instrs;
    r_cycles = st.cycles;
    r_gc_count = st.gc_count;
    r_heap = st.heap.Gcheap.Heap.stats;
    r_gc_points = List.rev st.gc_points;
    r_live_objects = live_objects;
    r_live_bytes = live_bytes;
    r_gc_max_pause_words = st.gc_max_pause_words;
    r_gc_total_pause_words = st.gc_total_pause_words;
    r_census = List.rev st.censuses;
  }
