(** The annotation algorithm ("An Algorithm" + "Optimizations" 1-2 +
    "Debugging Applications").

    Every pointer-valued expression [e] occurring as the right side of an
    assignment, the argument of a dereferencing operation, or a function
    argument or result is replaced by [KEEP_LIVE(e, BASE(e))]; increment and
    decrement operators are treated as assignments.  Memory accesses through
    [\[\]], [->] and [.] are treated in their [*&(...)] normal form: the
    computed address is the dereference argument, so the whole address
    expression gets one KEEP_LIVE with the BASEADDR base — "we essentially
    treat pointer offset calculations as pointer arithmetic".

    In [Checked] mode the same insertion points receive calls to
    [GC_same_obj] / [GC_pre_incr] / [GC_post_incr] instead, exactly as the
    paper's debugging mode. *)

open Csyntax

exception Unnormalized of string * Loc.t
(** raised when BASE is queried on a generating expression, i.e. the input
    was not run through {!Normalize} *)

(** The insertion rule a site belongs to, for the stats breakdown. *)
type rule =
  | R_value  (** assignment right sides, call arguments, returns *)
  | R_access  (** the [*&(...)] wrap of a memory access's address *)
  | R_arith  (** pointer arithmetic updates: [++]/[--]/[op=] expansion *)
  | R_check  (** checked-mode extent/base checks (GC_check_range/base) *)

let rule_name = function
  | R_value -> "value"
  | R_access -> "access"
  | R_arith -> "arith"
  | R_check -> "check"

let all_rules = [ R_value; R_access; R_arith; R_check ]

(** Why a site was provably redundant and suppressed. *)
type reason =
  | S_heapness  (** the flow-insensitive heapness verdict *)
  | S_flow_heap  (** flow-sensitive: not heapy at this program point *)
  | S_live  (** base live across the site, rooted by its own location *)

let reason_name = function
  | S_heapness -> "heapness"
  | S_flow_heap -> "flow-heap"
  | S_live -> "flow-live"

let all_reasons = [ S_heapness; S_flow_heap; S_live ]

type suppression = {
  sup_func : string;  (** enclosing function *)
  sup_base : string;  (** the base variable the site would have kept live *)
  sup_rule : rule;  (** the rule that would have inserted it *)
  sup_reason : reason;  (** why it was proved redundant *)
  sup_loc : Loc.t;
}

type stats = {
  st_by_rule : (rule * int) list;  (** insertions per rule *)
  st_by_reason : (reason * int) list;  (** suppressions per analysis *)
  st_suppressions : suppression list;  (** every suppressed site, in order *)
  st_by_func : (string * int) list;
      (** insertions per function, in program order — what the heap
          profiler joins against alloc-site function names *)
}

let rule_index = function R_value -> 0 | R_access -> 1 | R_arith -> 2 | R_check -> 3

let reason_index = function S_heapness -> 0 | S_flow_heap -> 1 | S_live -> 2

type ctx = {
  opts : Mode.options;
  tenv : Ctype.Env.t;
  temps : Temps.t;
  fname : string;  (** enclosing function, for the suppression log *)
  mutable keep_live_count : int;  (** inserted annotations, for the stats *)
  inserted : int array;  (** per-{!rule} insertion counts *)
  suppressed : int array;  (** per-{!reason} suppression counts *)
  mutable sups : suppression list;  (** reverse-order suppression log *)
  possibly_heap : Heapness.verdict;
      (** can this variable hold a heap pointer?  Non-heap bases need no
          KEEP_LIVE: the object they point into is stack or static
          storage, which the collector never reclaims *)
  facts : Analysis.Summary.t option;
      (** the dataflow clients' result for the enclosing function, when
          [opts.analysis = A_flow] *)
  mutable cur_point : Analysis.Cfg.point option;
      (** the CFG point of the top-level expression being transformed *)
  mutable stmt_has_call : bool;
      (** does the statement being transformed perform any call?  Under
          optimization (4) — collections only at call sites — expressions
          that evaluate without calling cannot be interrupted by a
          collection, so their annotations are skipped *)
}

let mk desc ty =
  let e = Ast.mk_expr desc in
  e.Ast.ety <- Some ty;
  e

let void_ptr = Ctype.Ptr Ctype.Void

(* Size of the element a pointer of type [ty] steps over. *)
let elem_size ctx ty =
  match Ctype.pointee ty with
  | Some Ctype.Void -> 1
  | Some t -> Ctype.size ctx.tenv t
  | None -> 1

(* count one insertion under [rule] *)
let count ctx rule =
  ctx.keep_live_count <- ctx.keep_live_count + 1;
  ctx.inserted.(rule_index rule) <- ctx.inserted.(rule_index rule) + 1

let suppress ctx ~rule ~reason ~base ~loc =
  ctx.suppressed.(reason_index reason) <-
    ctx.suppressed.(reason_index reason) + 1;
  ctx.sups <-
    {
      sup_func = ctx.fname;
      sup_base = base;
      sup_rule = rule;
      sup_reason = reason;
      sup_loc = loc;
    }
    :: ctx.sups

(* Can the site be proved redundant?  First the flow-insensitive heapness
   verdict, then the flow-sensitive clients at the current program point:
   a base that cannot hold a heap pointer here needs no retention, and a
   base that roots its object itself — live across the statement, only
   self-advanced by it, not reachable through memory — keeps the object
   alive through its own register or stack slot. *)
let suppression_reason ctx (base_var : string) : reason option =
  if not (ctx.possibly_heap base_var) then Some S_heapness
  else
    match ctx.facts with
    | None -> None
    | Some facts ->
        if not (Analysis.Summary.may_be_heap facts ctx.cur_point base_var)
        then Some S_flow_heap
        else if Analysis.Summary.live_across facts ctx.cur_point base_var then
          Some S_live
        else None

(** Emit the mode-appropriate KEEP_LIVE(e, base).  Under [calls_only],
    call-free statements need no annotation: no collection point can fall
    inside their evaluation. *)
let keep_live ctx ~rule (e : Ast.expr) (base_var : string) : Ast.expr =
  if ctx.opts.Mode.calls_only && not ctx.stmt_has_call then e
  else
  match suppression_reason ctx base_var with
  | Some reason ->
      suppress ctx ~rule ~reason ~base:base_var ~loc:e.Ast.eloc;
      e
  | None ->
  begin
  count ctx rule;
  let ty = Ast.rtyp e in
  match ctx.opts.Mode.mode with
  | Mode.Safe -> mk (Ast.KeepLive (e, Some (mk (Ast.Var base_var) ty))) ty
  | Mode.Checked ->
      (* cast-to-T of GC_same_obj(cast-to-void-ptr e, cast-to-void-ptr base) *)
      let cast t x = mk (Ast.Cast (t, x)) t in
      mk
        (Ast.Cast
           ( ty,
             mk
               (Ast.RuntimeCall
                  ( "GC_same_obj",
                    [ cast void_ptr e; cast void_ptr (mk (Ast.Var base_var) ty) ]
                  ))
               void_ptr ))
        ty
  end

let is_array_typed (e : Ast.expr) =
  match e.Ast.ety with Some (Ctype.Array _) -> true | _ -> false

(** Does the value of [e] come straight from a generating expression
    (through casts, commas and stores)?  Such values are opaque — call
    results behave as KEEP_LIVE values and loads were access-wrapped — so
    no further KEEP_LIVE is needed around them. *)
let rec generating_tail (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.Deref _ | Ast.Call (_, _) | Ast.RuntimeCall (_, _) | Ast.KeepLive _ ->
      true
  | Ast.Index (_, _) | Ast.Arrow (_, _) | Ast.Field (_, _) ->
      not (is_array_typed e)
  | Ast.Cast (_, x) | Ast.Comma (_, x) | Ast.Assign (_, x) ->
      generating_tail x
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The transformation                                                  *)
(* ------------------------------------------------------------------ *)

let rec rv ctx ?(used = true) (e : Ast.expr) : Ast.expr =
  let ty = Ast.typ e in
  let remk desc = mk desc ty in
  match e.Ast.edesc with
  | Ast.IntLit _ | Ast.CharLit _ | Ast.StrLit _ | Ast.FloatLit _ | Ast.Var _
  | Ast.SizeofType _ | Ast.SizeofExpr _ ->
      e
  | Ast.Unop (op, a) -> remk (Ast.Unop (op, rv ctx a))
  | Ast.Binop (op, a, b) -> remk (Ast.Binop (op, rv ctx a, rv ctx b))
  | Ast.Assign (lv, rhs)
    when ctx.opts.Mode.mode = Mode.Checked
         && Ctype.is_aggregate (Ast.typ lv)
         && (match lv.Ast.edesc with Ast.Var _ -> false | _ -> true) ->
      (* whole-structure store through memory: the paper's "additional
         check" that the full extent lies within the object.  NB: the
         destination address expression is evaluated twice (check +
         store); side-effecting subscripts in aggregate stores are outside
         the checked subset. *)
      aggregate_checked_assign ctx e lv rhs
  | Ast.Assign (lv, rhs) ->
      let rhs' = wrap ctx rhs in
      let rhs' =
        (* Extensions-mode discipline: pointer stores to memory (heap or
           aggregate locations) must store base pointers only *)
        match lv.Ast.edesc with
        | Ast.Var _ -> rhs'
        | _ ->
            if
              ctx.opts.Mode.check_base_stores
              && ctx.opts.Mode.mode = Mode.Checked
              && Ast.is_pointer_valued rhs'
            then begin
              count ctx R_check;
              let t = Ast.rtyp rhs' in
              mk
                (Ast.Cast
                   ( t,
                     mk
                       (Ast.RuntimeCall
                          ( "GC_check_base",
                            [ mk (Ast.Cast (void_ptr, rhs')) void_ptr ] ))
                       void_ptr ))
                t
            end
            else rhs'
      in
      remk (Ast.Assign (store_target ctx lv, rhs'))
  | Ast.OpAssign (op, lv, rhs) -> op_assign ctx e op lv rhs
  | Ast.Incr (k, lv) -> incr_expand ctx e ~used k lv
  | Ast.Deref a -> remk (Ast.Deref (wrap ctx a))
  | Ast.Index (_, _) | Ast.Arrow (_, _) | Ast.Field (_, _) ->
      if is_array_typed e then chain ctx e else access ctx e
  | Ast.AddrOf lv -> remk (Ast.AddrOf (chain ctx lv))
  | Ast.Call (f, args) -> remk (Ast.Call (f, List.map (wrap ctx) args))
  | Ast.Cast (cty, a) -> remk (Ast.Cast (cty, rv ctx a))
  | Ast.Cond (c, a, b) -> remk (Ast.Cond (rv ctx c, rv ctx a, rv ctx b))
  | Ast.Comma (a, b) ->
      remk (Ast.Comma (rv ctx ~used:false a, rv ctx ~used b))
  | Ast.KeepLive (_, _) | Ast.RuntimeCall (_, _) ->
      invalid_arg "Annotate: input already annotated"

(** [e] in a KEEP_LIVE position: assignment rhs, deref argument, call
    argument, or function result. *)
and wrap ctx (e : Ast.expr) : Ast.expr = wrap_t ctx e.Ast.eloc (rv ctx e)

and wrap_t ctx loc (e : Ast.expr) : Ast.expr =
  if not (Ast.is_pointer_valued e) then e
  else if ctx.opts.Mode.suppress_copies && Base_rules.is_copy e then e
  else
    match e.Ast.edesc with
    (* generating expressions: the loaded/returned value is opaque (call
       results behave as KEEP_LIVE values; loads were access-wrapped) *)
    | Ast.Deref _ | Ast.Call (_, _) | Ast.RuntimeCall (_, _) -> e
    | Ast.Index (_, _) | Ast.Arrow (_, _) | Ast.Field (_, _)
      when not (is_array_typed e) ->
        e
    | Ast.Cond (c, a, b) ->
        (* distribute into the branches so each value is generated by a
           KEEP_LIVE *)
        mk (Ast.Cond (c, wrap_t ctx loc a, wrap_t ctx loc b)) (Ast.typ e)
    | Ast.Comma (a, b) ->
        mk (Ast.Comma (a, wrap_t ctx loc b)) (Ast.typ e)
    | _ -> (
        match Base_rules.base e with
        | Base_rules.Var b -> keep_live ctx ~rule:R_value e b
        | Base_rules.Nil -> e
        | Base_rules.Unnamed ->
            if generating_tail e then e
            else
              raise
                (Unnormalized
                   (Format.asprintf "no base for %a" Pretty.pp_expr e, loc)))

(** A scalar access through [\[\]] / [->] / [.]: wrap the whole address
    computation once, in its [*&(...)] normal form. *)
and access ctx (e : Ast.expr) : Ast.expr =
  let ty = Ast.typ e in
  let e' = chain ctx e in
  match Base_rules.baseaddr e' with
  | Base_rules.Var b ->
      let addr = mk (Ast.AddrOf e') (Ctype.Ptr ty) in
      mk (Ast.Deref (keep_live ctx ~rule:R_access addr b)) ty
  | Base_rules.Nil -> e'
  | Base_rules.Unnamed ->
      raise
        (Unnormalized
           ( Format.asprintf "no base address for %a" Pretty.pp_expr e,
             e.Ast.eloc ))

(** Transform the components of an lvalue chain without wrapping the chain
    itself (a single wrap at the outermost access covers it). *)
and chain ctx (e : Ast.expr) : Ast.expr =
  let ty = Ast.typ e in
  let remk desc = mk desc ty in
  match e.Ast.edesc with
  | Ast.Var _ -> e
  | Ast.Deref a -> remk (Ast.Deref (rv ctx a))
  | Ast.Index (a, i) ->
      let a' = if is_array_typed a then chain ctx a else rv ctx a in
      remk (Ast.Index (a', rv ctx i))
  | Ast.Arrow (p, f) -> remk (Ast.Arrow (rv ctx p, f))
  | Ast.Field (b, f) -> remk (Ast.Field (chain ctx b, f))
  | Ast.Cast (cty, b) -> remk (Ast.Cast (cty, chain ctx b))
  | _ -> rv ctx e

(** The target of a store.  Stores are dereferences too, so the computed
    address gets the same wrap as a load's. *)
and store_target ctx (lv : Ast.expr) : Ast.expr =
  match lv.Ast.edesc with Ast.Var _ -> lv | _ -> rv ctx lv

and aggregate_checked_assign ctx e lv rhs : Ast.expr =
  let ty = Ast.typ e in
  let size = Ctype.size ctx.tenv (Ast.typ lv) in
  let lv' = chain ctx lv in
  let check_of target =
    count ctx R_check;
    let addr = mk (Ast.AddrOf target) (Ctype.Ptr (Ast.typ target)) in
    mk
      (Ast.RuntimeCall
         ( "GC_check_range",
           [ mk (Ast.Cast (void_ptr, addr)) void_ptr;
             mk (Ast.IntLit size) Ctype.Long ] ))
      void_ptr
  in
  let checks = [ check_of lv' ] in
  let rhs' = chain ctx rhs in
  let checks =
    match rhs.Ast.edesc with
    | Ast.Var _ -> checks (* a whole local/global struct: not heap *)
    | _ -> check_of rhs' :: checks
  in
  let assign = mk (Ast.Assign (lv', rhs')) ty in
  List.fold_left
    (fun acc check -> mk (Ast.Comma (check, acc)) ty)
    assign checks

(* --- compound assignment ------------------------------------------- *)

and op_assign ctx e op lv rhs : Ast.expr =
  let ty = Ast.typ e in
  let lv_is_ptr = Ctype.is_pointer (Ctype.decay (Ast.typ lv)) in
  let ptr_op = lv_is_ptr && (op = Ast.Add || op = Ast.Sub) in
  if not ptr_op then
    mk (Ast.OpAssign (op, store_target ctx lv, rv ctx rhs)) ty
  else
    match lv.Ast.edesc with
    | Ast.Var x -> (
        let rhs' = rv ctx rhs in
        match ctx.opts.Mode.mode with
        | Mode.Safe ->
            (* x = KEEP_LIVE(x op rhs, x) *)
            let arith = mk (Ast.Binop (op, lv, rhs')) ty in
            mk (Ast.Assign (lv, keep_live ctx ~rule:R_arith arith x)) ty
        | Mode.Checked ->
            (* cast-to-T of GC_pre_incr(&x, rhs scaled by the element size) *)
            checked_incr ctx ~fn:"GC_pre_incr" ~lv
              ~delta:(scaled_delta ctx ty op rhs'))
    | _ -> (
        (* general form: (t1 = KEEP_LIVE(&lv, B), t2 = *t1,
                          *t1 = KEEP_LIVE(t2 op rhs, t2)) *)
        let lv' = chain ctx lv in
        let addr_ty = Ctype.Ptr ty in
        let t1 = Temps.fresh ctx.temps addr_ty in
        let t1v = mk (Ast.Var t1) addr_ty in
        let addr = mk (Ast.AddrOf lv') addr_ty in
        let addr =
          match Base_rules.baseaddr lv' with
          | Base_rules.Var b -> keep_live ctx ~rule:R_access addr b
          | Base_rules.Nil -> addr
          | Base_rules.Unnamed ->
              raise
                (Unnormalized
                   ( Format.asprintf "no base address for %a" Pretty.pp_expr lv,
                     lv.Ast.eloc ))
        in
        let bind_addr = mk (Ast.Assign (t1v, addr)) addr_ty in
        let rhs' = rv ctx rhs in
        match ctx.opts.Mode.mode with
        | Mode.Safe ->
            let t2 = Temps.fresh ctx.temps ty in
            let t2v = mk (Ast.Var t2) ty in
            let load = mk (Ast.Assign (t2v, mk (Ast.Deref t1v) ty)) ty in
            let arith = mk (Ast.Binop (op, t2v, rhs')) ty in
            let store =
              mk
                (Ast.Assign
                   (mk (Ast.Deref t1v) ty, keep_live ctx ~rule:R_arith arith t2))
                ty
            in
            mk (Ast.Comma (bind_addr, mk (Ast.Comma (load, store)) ty)) ty
        | Mode.Checked ->
            let call =
              mk
                (Ast.RuntimeCall
                   ("GC_pre_incr", [ t1v; scaled_delta ctx ty op rhs' ]))
                void_ptr
            in
            mk (Ast.Comma (bind_addr, mk (Ast.Cast (ty, call)) ty)) ty)

(* (rhs) * sizeof(elem), negated for -= *)
and scaled_delta ctx ty op rhs =
  let size = elem_size ctx ty in
  let scaled =
    if size = 1 then rhs
    else mk (Ast.Binop (Ast.Mul, rhs, mk (Ast.IntLit size) Ctype.Long)) Ctype.Long
  in
  match op with
  | Ast.Sub -> mk (Ast.Unop (Ast.Neg, scaled)) Ctype.Long
  | _ -> scaled

and checked_incr ctx ~fn ~lv ~delta : Ast.expr =
  count ctx R_arith;
  let ty = Ast.typ lv in
  let addr = mk (Ast.AddrOf lv) (Ctype.Ptr ty) in
  mk
    (Ast.Cast (ty, mk (Ast.RuntimeCall (fn, [ addr; delta ])) void_ptr))
    ty

(* --- increment / decrement ----------------------------------------- *)

and incr_expand ctx e ~used k lv : Ast.expr =
  let ty = Ctype.decay (Ast.typ lv) in
  let is_ptr = Ctype.is_pointer ty in
  if not is_ptr then
    mk (Ast.Incr (k, store_target ctx lv)) (Ast.typ e)
  else
    let op =
      match k with
      | Ast.PreIncr | Ast.PostIncr -> Ast.Add
      | Ast.PreDecr | Ast.PostDecr -> Ast.Sub
    in
    let is_post = match k with Ast.PostIncr | Ast.PostDecr -> true | _ -> false in
    let one = mk (Ast.IntLit 1) Ctype.Int in
    match (lv.Ast.edesc, ctx.opts.Mode.mode) with
    | Ast.Var x, Mode.Safe ->
        if is_post && used && ctx.opts.Mode.expand_incr then begin
          (* optimization (2): (tmp = x, x = KEEP_LIVE(tmp op 1, tmp), tmp)
             — avoids forcing x to memory *)
          let t = Temps.fresh ctx.temps ty in
          let tv = mk (Ast.Var t) ty in
          let bind = mk (Ast.Assign (tv, lv)) ty in
          let arith = mk (Ast.Binop (op, tv, one)) ty in
          let update =
            mk (Ast.Assign (lv, keep_live ctx ~rule:R_arith arith t)) ty
          in
          mk (Ast.Comma (bind, mk (Ast.Comma (update, tv)) ty)) ty
        end
        else
          (* value of the whole is the (new) value of x: a copy *)
          let arith = mk (Ast.Binop (op, lv, one)) ty in
          mk (Ast.Assign (lv, keep_live ctx ~rule:R_arith arith x)) ty
    | Ast.Var _, Mode.Checked ->
        let fn = if is_post then "GC_post_incr" else "GC_pre_incr" in
        let size = elem_size ctx ty in
        let delta =
          mk (Ast.IntLit (if op = Ast.Sub then -size else size)) Ctype.Long
        in
        checked_incr ctx ~fn ~lv ~delta
    | _, _ ->
        (* complex lvalue: general expansion through its address, shared
           with compound assignment *)
        let fake_rhs = one in
        let expanded = op_assign ctx e op lv fake_rhs in
        if is_post && used then
          (* need the OLD value: (t1 = &lv, t2 = *t1, *t1 = KL(t2 op 1, t2), t2)
             — rebuild explicitly rather than reuse op_assign *)
          post_complex ctx op lv
        else expanded

and post_complex ctx op lv : Ast.expr =
  let ty = Ctype.decay (Ast.typ lv) in
  let addr_ty = Ctype.Ptr ty in
  let lv' = chain ctx lv in
  let t1 = Temps.fresh ctx.temps addr_ty in
  let t1v = mk (Ast.Var t1) addr_ty in
  let addr = mk (Ast.AddrOf lv') addr_ty in
  let addr =
    match Base_rules.baseaddr lv' with
    | Base_rules.Var b -> keep_live ctx ~rule:R_access addr b
    | Base_rules.Nil | Base_rules.Unnamed -> addr
  in
  let bind_addr = mk (Ast.Assign (t1v, addr)) addr_ty in
  let one = mk (Ast.IntLit 1) Ctype.Int in
  match ctx.opts.Mode.mode with
  | Mode.Safe ->
      let t2 = Temps.fresh ctx.temps ty in
      let t2v = mk (Ast.Var t2) ty in
      let load = mk (Ast.Assign (t2v, mk (Ast.Deref t1v) ty)) ty in
      let arith = mk (Ast.Binop (op, t2v, one)) ty in
      let store =
        mk
          (Ast.Assign
             (mk (Ast.Deref t1v) ty, keep_live ctx ~rule:R_arith arith t2))
          ty
      in
      mk
        (Ast.Comma
           ( bind_addr,
             mk (Ast.Comma (load, mk (Ast.Comma (store, t2v)) ty)) ty ))
        ty
  | Mode.Checked ->
      let size = elem_size ctx ty in
      let delta =
        mk (Ast.IntLit (if op = Ast.Sub then -size else size)) Ctype.Long
      in
      let call =
        mk (Ast.RuntimeCall ("GC_post_incr", [ t1v; delta ])) void_ptr
      in
      mk (Ast.Comma (bind_addr, mk (Ast.Cast (ty, call)) ty)) ty

(* ------------------------------------------------------------------ *)
(* Statements and program                                              *)
(* ------------------------------------------------------------------ *)

(* does this expression perform any call? (used by optimization 4) *)
let expr_has_call (e : Ast.expr) =
  Ast.fold_expr
    (fun acc x ->
      acc
      ||
      match x.Ast.edesc with
      | Ast.Call (_, _) | Ast.RuntimeCall (_, _) -> true
      | _ -> false)
    false e

let rec ann_stmt ctx (s : Ast.stmt) : Ast.stmt =
  let remk sdesc = Ast.mk_stmt ~loc:s.Ast.sloc sdesc in
  (* per-expression call flag: the KEEP_LIVE hazard window lies within one
     expression evaluation; values that outlive the statement land in
     variables, which are roots *)
  let with_flag e f =
    ctx.stmt_has_call <- expr_has_call e;
    (* the dataflow clients answer per program point; top-level
       expressions keep their physical identity from CFG construction to
       here, so the lookup pins the point for every nested site *)
    ctx.cur_point <-
      (match ctx.facts with
      | Some facts -> Analysis.Summary.point_of facts e
      | None -> None);
    let r = f e in
    ctx.stmt_has_call <- true;
    ctx.cur_point <- None;
    r
  in
  match s.Ast.sdesc with
  | Ast.Sexpr e -> remk (Ast.Sexpr (with_flag e (rv ctx ~used:false)))
  | Ast.Sdecl d ->
      (* an initializer is the right side of an assignment *)
      remk
        (Ast.Sdecl
           {
             d with
             Ast.d_init =
               Option.map (fun e -> with_flag e (wrap ctx)) d.Ast.d_init;
           })
  | Ast.Sif (c, a, b) ->
      remk
        (Ast.Sif
           ( with_flag c (rv ctx ~used:true),
             ann_stmt ctx a,
             Option.map (ann_stmt ctx) b ))
  | Ast.Swhile (c, b) ->
      remk (Ast.Swhile (with_flag c (rv ctx ~used:true), ann_stmt ctx b))
  | Ast.Sdowhile (b, c) ->
      remk (Ast.Sdowhile (ann_stmt ctx b, with_flag c (rv ctx ~used:true)))
  | Ast.Sfor (i, c, st, b) ->
      remk
        (Ast.Sfor
           ( Option.map (fun e -> with_flag e (rv ctx ~used:false)) i,
             Option.map (fun e -> with_flag e (rv ctx ~used:true)) c,
             Option.map (fun e -> with_flag e (rv ctx ~used:false)) st,
             ann_stmt ctx b ))
  | Ast.Sreturn (Some e) ->
      (* function results are a KEEP_LIVE position *)
      remk (Ast.Sreturn (Some (with_flag e (wrap ctx))))
  | Ast.Sreturn None | Ast.Sbreak | Ast.Scontinue | Ast.Sempty -> s
  | Ast.Sblock ss -> remk (Ast.Sblock (List.map (ann_stmt ctx) ss))

type result = {
  program : Ast.program;
  keep_live_count : int;  (** number of KEEP_LIVE / check insertions *)
  stats : stats;  (** per-rule insertions and per-analysis suppressions *)
}

(** Annotate a type-annotated, {!Normalize}d program. *)
let annotate_program ?(opts = Mode.default Mode.Safe) (p : Ast.program) :
    result =
  let count = ref 0 in
  let inserted = Array.make (List.length all_rules) 0 in
  let suppressed = Array.make (List.length all_reasons) 0 in
  let sups = ref [] in
  let by_func = ref [] in
  let global_names = Hashtbl.create 16 in
  List.iter
    (function
      | Ast.Gvar d -> Hashtbl.replace global_names d.Ast.d_name ()
      | Ast.Gfunc _ | Ast.Gstruct _ | Ast.Gproto _ -> ())
    p.Ast.prog_globals;
  let is_global v = Hashtbl.mem global_names v in
  let globals =
    List.map
      (function
        | Ast.Gfunc f ->
            let ctx =
              {
                opts;
                tenv = p.Ast.prog_env;
                temps = Temps.create ();
                fname = f.Ast.f_name;
                keep_live_count = 0;
                inserted = Array.make (List.length all_rules) 0;
                suppressed = Array.make (List.length all_reasons) 0;
                sups = [];
                possibly_heap =
                  (if opts.Mode.heapness_analysis then
                     Heapness.analyze ~global:is_global f
                   else Heapness.all_heapy);
                facts =
                  (match opts.Mode.analysis with
                  | Mode.A_none -> None
                  | Mode.A_flow ->
                      Some (Analysis.Summary.analyze ~global:is_global f));
                cur_point = None;
                stmt_has_call = true;
              }
            in
            let body = ann_stmt ctx f.Ast.f_body in
            count := !count + ctx.keep_live_count;
            Array.iteri (fun i n -> inserted.(i) <- inserted.(i) + n) ctx.inserted;
            Array.iteri
              (fun i n -> suppressed.(i) <- suppressed.(i) + n)
              ctx.suppressed;
            sups := ctx.sups @ !sups;
            by_func := (f.Ast.f_name, ctx.keep_live_count) :: !by_func;
            Ast.Gfunc { f with Ast.f_body = Temps.splice_decls ctx.temps body }
        | (Ast.Gvar _ | Ast.Gstruct _ | Ast.Gproto _) as g -> g)
      p.Ast.prog_globals
  in
  let p' = { p with Ast.prog_globals = globals } in
  ignore (Typecheck.check_program p');
  {
    program = p';
    keep_live_count = !count;
    stats =
      {
        st_by_rule = List.map (fun r -> (r, inserted.(rule_index r))) all_rules;
        st_by_reason =
          List.map (fun r -> (r, suppressed.(reason_index r))) all_reasons;
        st_suppressions = List.rev !sups;
        st_by_func = List.rev !by_func;
      };
  }

(** The full preprocessor front half: type-check, normalize, annotate. *)
let run ?(opts = Mode.default Mode.Safe) (p : Ast.program) : result =
  ignore (Typecheck.check_program p);
  let p = Normalize.norm_program p in
  annotate_program ~opts p
