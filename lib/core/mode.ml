(** Output modes of the preprocessor.

    [Safe] inserts KEEP_LIVE pseudo-operations that the compiler backend
    lowers to empty-asm-style barriers (GC-safety with minimal overhead).
    [Checked] replaces each KEEP_LIVE by a real call to the collector's
    checking runtime ([GC_same_obj], [GC_pre_incr], [GC_post_incr]),
    turning the preprocessor into a pointer-arithmetic checker; the checking
    calls are opaque to the compiler and therefore also ensure GC-safety,
    "though not in a performance-optimal fashion". *)

type t = Safe | Checked

let to_string = function Safe -> "safe" | Checked -> "checked"

(** Which program analysis prunes annotation sites.

    [A_none] is the paper's implementation: every possibly-heap site is
    annotated.  [A_flow] runs the [lib/analysis] dataflow clients
    (flow-sensitive heapness, demand-driven liveness, escape) and
    suppresses sites they prove redundant. *)
type analysis = A_none | A_flow

let analysis_to_string = function A_none -> "none" | A_flow -> "flow"

let analysis_of_string = function
  | "none" -> Some A_none
  | "flow" -> Some A_flow
  | _ -> None

type options = {
  mode : t;
  suppress_copies : bool;
      (** the paper's optimization (1): no KEEP_LIVE around expressions that
          are statically just copies of values stored elsewhere *)
  expand_incr : bool;
      (** the paper's optimization (2): specialized expansion of [++]/[--]
          on simple variables that avoids forcing them into memory *)
  loop_heuristic : bool;
      (** the paper's optimization (3): replace rapidly-varying base
          pointers in loops by equivalent slowly-varying ones *)
  calls_only : bool;
      (** the paper's optimization (4): "If we know that garbage
          collections can be triggered only at procedure calls, the number
          of KEEP_LIVE invocations could often be reduced dramatically" —
          skip annotations inside statements that perform no calls *)
  heapness_analysis : bool;
      (** prove some pointer variables can only address stack/static
          storage and drop their annotations — the "sufficiently good
          program analysis" direction the paper points at *)
  check_base_stores : bool;
      (** the Extensions section: "asserting that the client program
          stores only pointers to the base of an object in the heap or in
          statically allocated variables ... It would again be possible to
          insert dynamic checks to verify this" — in Checked mode, wrap
          pointer stores to non-local locations with GC_check_base *)
  analysis : analysis;
      (** dataflow-analysis-directed suppression of annotation sites (the
          "sufficiently good program analysis" the paper points at).
          [A_none] here so the library default reproduces the paper's
          algorithm verbatim; the build harness and the CLI default to
          [A_flow]. *)
}

let default mode =
  {
    mode;
    suppress_copies = true;
    expand_incr = true;
    loop_heuristic = false;
    calls_only = false;
    heapness_analysis = false;
    check_base_stores = false;
    analysis = A_none;
  }
