(** The annotation algorithm: KEEP_LIVE / checking-call insertion.

    Every pointer-valued expression occurring as the right side of an
    assignment, the argument of a dereferencing operation, or a function
    argument or result is replaced by [KEEP_LIVE(e, BASE(e))] (Safe mode)
    or a [GC_same_obj]-family call (Checked mode); increment and decrement
    operators are treated as assignments.  See {!Mode.options} for the
    paper's optimizations (1), (2), (4) and the Extensions-mode store
    discipline. *)

exception Unnormalized of string * Csyntax.Loc.t
(** BASE was queried on a generating expression: the input was not run
    through {!Normalize}. *)

(** {1 Insertion and suppression statistics}

    Every annotation site belongs to one insertion rule; under
    [Mode.analysis = A_flow] each site a dataflow client proves redundant
    is suppressed instead, and the reason is recorded. *)

type rule =
  | R_value  (** assignment right sides, call arguments, returns *)
  | R_access  (** the [*&(...)] wrap of a memory access's address *)
  | R_arith  (** pointer arithmetic updates: [++]/[--]/[op=] expansion *)
  | R_check  (** checked-mode extent/base checks (GC_check_range/base) *)

val rule_name : rule -> string

val all_rules : rule list

type reason =
  | S_heapness  (** the flow-insensitive heapness verdict *)
  | S_flow_heap  (** flow-sensitive: not heapy at this program point *)
  | S_live  (** base live across the site, rooted by its own location *)

val reason_name : reason -> string

val all_reasons : reason list

type suppression = {
  sup_func : string;  (** enclosing function *)
  sup_base : string;  (** the base variable the site would have kept live *)
  sup_rule : rule;  (** the rule that would have inserted it *)
  sup_reason : reason;  (** why it was proved redundant *)
  sup_loc : Csyntax.Loc.t;
}

type stats = {
  st_by_rule : (rule * int) list;  (** insertions per rule *)
  st_by_reason : (reason * int) list;  (** suppressions per analysis *)
  st_suppressions : suppression list;  (** every suppressed site, in order *)
  st_by_func : (string * int) list;
      (** insertions per function, in program order — joins against the
          heap profiler's per-site function names *)
}

type result = {
  program : Csyntax.Ast.program;
  keep_live_count : int;  (** number of KEEP_LIVE / check insertions *)
  stats : stats;  (** per-rule insertions and per-analysis suppressions *)
}

val annotate_program :
  ?opts:Mode.options -> Csyntax.Ast.program -> result
(** Annotate a type-annotated, {!Normalize}d program.  The result is
    re-type-checked so every node carries its type. *)

val run : ?opts:Mode.options -> Csyntax.Ast.program -> result
(** The full preprocessor front half: type-check, normalize, annotate. *)
