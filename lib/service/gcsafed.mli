(** [gcsafed]: the long-running service harness.

    A service accepts a stream of {!Harness.Request.t} values — each a
    complete (source, config, machine, analysis, gc mode, heap limit,
    OOM policy, failpoint, schedule) tuple — and executes every one of
    them over a worker pool, against the shared single-flight build
    cache, under admission control on a bounded queue.  Every submitted
    request ends in exactly one structured {!Harness.Outcome.t}; a full
    queue yields a [Rejected] outcome (never an unbounded queue, never a
    dropped request), which is the service-level spelling of the
    robustness identity.

    {b Determinism.}  Reports are a function of the submitted traffic
    alone, not of the worker count or wall-clock: arrivals and service
    times live on a virtual tick clock.  Every request is executed
    exactly once (speculatively, fanned out over the pool, results
    consumed in submission order), and admission, queueing delay and
    latency are then derived by simulating an M/c/K queue in virtual
    time — [servers] lanes and a bounded FIFO — where a request's
    service cost is its measured cycle count (or [failure_cost] for a
    non-[Ran] outcome) plus [build_miss_cost] on a logical cache miss.
    A logical miss is the first admission of a cache key in submission
    order ([use_cache = false] requests always miss).  The same traffic
    therefore produces byte-identical reports under [--jobs 1] and
    [--jobs 8].

    {b Telemetry.}  Each request executes against its own fresh
    session-scoped {!Telemetry.Sink} (no process-global registry is
    touched); the snapshots of admitted requests are then absorbed into
    the service's registry in submission order via
    {!Telemetry.Metrics.absorb}.  Rejected requests leave no trace in
    the service registry.

    {b Observability.}  The service keeps a {!Telemetry.Flight_recorder}
    ring of structured events ([request.begin]/[request.end], [reject],
    [slo.violation], [gc.emergency]) timestamped on the virtual clock
    and recorded only from serial sections, so dumps are byte-identical
    across worker counts.  When [create ~events] is given, a
    {!Telemetry.Stream} interleaves those events with windowed metric
    snapshots (JSON lines) on the same virtual clock.  Every admitted
    request carries a trace id (stamped at {!submit} when the caller
    left it 0) and its completion a per-phase latency breakdown:
    [r_queue_wait + r_build_ticks + r_vm_ticks = r_finish - r_arrival].

    Tick latency is deliberately pause-budget-invariant: a request's
    VM share is its measured cycle count, and cycle counts are
    bit-identical across GC modes and pause budgets by construction
    (the ablation invariant).  The pause measure that {e does} respond
    to [--gc-pause-budget] is [r_gc_max_pause_words] — the largest
    single GC pause inside the request on the deterministic
    words-of-work clock. *)

type config = {
  servers : int;  (** virtual service lanes (the M/c/K's c) *)
  queue_capacity : int;
      (** bounded waiting room; a request arriving when all lanes are
          busy and the room is full is shed as [Rejected] *)
  failure_cost : int;
      (** virtual ticks charged for a request whose outcome carries no
          cycle count (faults, source errors, ...) *)
  build_miss_cost : int;
      (** virtual ticks added to the first admission of each cache key
          (the build-tier cost a hit avoids) *)
}

val default_config : config
(** 4 lanes, a 64-request waiting room, 2000-tick failure cost,
    20000-tick build cost. *)

type t

val create :
  ?pool:Exec.Pool.t ->
  ?metrics:Telemetry.Metrics.t ->
  ?recorder_capacity:int ->
  ?events:(Telemetry.Json.t -> unit) ->
  ?window:int ->
  config ->
  t
(** [pool] fans request execution out (default serial — reports do not
    depend on it); [metrics] is the service registry absorbing
    per-request telemetry (default a fresh enabled registry);
    [recorder_capacity] sizes the flight-recorder ring (default
    {!Telemetry.Flight_recorder.default_capacity}); [events], when
    given, receives the JSON-lines stream (event lines plus windowed
    metric snapshots every [window] virtual ticks, default
    {!Telemetry.Stream.default_window}). *)

val metrics : t -> Telemetry.Metrics.t

val recorder : t -> Telemetry.Flight_recorder.t

val dump : t -> Telemetry.Json.t
(** {!Telemetry.Flight_recorder.dump} of the service ring — validates
    under {!Telemetry.Flight_recorder.check}. *)

val submit : ?arrival:int -> t -> Harness.Request.t -> unit
(** Enqueue a request arriving at virtual time [arrival] (default: the
    previous arrival; arrivals are clamped monotonically non-decreasing).
    After {!shutdown}, submissions complete immediately as [Rejected]. *)

val drain : t -> unit
(** Execute everything submitted so far and classify every request into
    a completion.  Queue state (lane clocks, the logical cache) persists
    across drains, so [submit]/[drain] cycles compose. *)

val shutdown : t -> unit
(** {!drain} the in-flight requests — every one completes — then close
    the service.  Idempotent. *)

val is_shut_down : t -> bool

type completion = {
  r_request : Harness.Request.t;
  r_outcome : Harness.Outcome.t;
  r_arrival : int;
  r_start : int;  (** = [r_arrival] for rejected requests *)
  r_finish : int;
  r_cache_hit : bool;  (** logical build-tier hit *)
  r_trace_id : int;  (** the id stamped at {!submit} (or caller-chosen) *)
  r_queue_wait : int;  (** [r_start - r_arrival] *)
  r_build_ticks : int;  (** build-tier share: [build_miss_cost] on a
                            logical miss, 0 on a hit or rejection *)
  r_vm_ticks : int;  (** VM share: measured cycles (or [failure_cost]);
                         [r_queue_wait + r_build_ticks + r_vm_ticks =
                          r_finish - r_arrival] *)
  r_gc_max_pause_words : int;
      (** largest single GC pause inside the request, words-of-work
          clock — the pause measure that responds to the budget *)
  r_gc_total_pause_words : int;
}

val completions : t -> completion list
(** Every completion so far, in submission order — exactly one per
    submitted request. *)

type report = {
  rp_submitted : int;
  rp_admitted : int;
  rp_rejected : int;
  rp_outcomes : (string * int) list;
      (** count per outcome class, every class present, exit-code order *)
  rp_unexpected : int;
      (** corruption + task-quarantined + internal-error completions:
          outcomes that must never occur *)
  rp_cache_hits : int;  (** logical build-tier hits *)
  rp_cache_misses : int;
  rp_makespan : int;  (** last finish - first arrival, virtual ticks *)
  rp_latency_p50 : int;  (** virtual ticks, from the service registry *)
  rp_latency_p90 : int;
  rp_latency_p99 : int;
  rp_labels : (string * int) list;  (** completions per request label *)
  rp_queue_wait : int;  (** summed queue-wait ticks *)
  rp_build_ticks : int;
  rp_vm_ticks : int;
  rp_total_latency : int;
      (** summed [r_finish - r_arrival]; always equals
          [rp_queue_wait + rp_build_ticks + rp_vm_ticks] *)
  rp_gc_max_pause_words : int;  (** worst single pause across requests *)
  rp_gc_total_pause_words : int;
  rp_slo_met : int;  (** from the [service/slo/*] counters *)
  rp_slo_violated : int;
}

val report : t -> report

val hit_rate : report -> float
(** Logical hits / (hits + misses); 0 when nothing was admitted. *)

val throughput : report -> float
(** Admitted requests per thousand virtual ticks of makespan. *)

val burn_rate : report -> float
(** SLO burn: violated / (met + violated); 0 when no request named a
    pause SLO. *)

val pp_report : Format.formatter -> report -> unit
(** Deterministic rendering: no wall-clock, no worker-count
    dependence — what the CLI prints and CI diffs across job counts. *)

val report_to_json : ?wall_s:float -> t -> Telemetry.Json.t
(** The full report plus, when [wall_s] is given, wall-clock throughput,
    and the session-scoped build-cache counters
    ({!Harness.Build.session_stats} over a session opened at {!create} —
    the traffic this service instance caused, which agrees with the
    absorbed [build/cache/*] registry counters). *)
