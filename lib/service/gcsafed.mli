(** [gcsafed]: the long-running service harness.

    A service accepts a stream of {!Harness.Request.t} values — each a
    complete (source, config, machine, analysis, gc mode, heap limit,
    OOM policy, failpoint, schedule) tuple — and executes every one of
    them over a worker pool, against the shared single-flight build
    cache, under admission control on a bounded queue.  Every submitted
    request ends in exactly one structured {!Harness.Outcome.t}; a full
    queue yields a [Rejected] outcome (never an unbounded queue, never a
    dropped request), which is the service-level spelling of the
    robustness identity.

    {b Determinism.}  Reports are a function of the submitted traffic
    alone, not of the worker count or wall-clock: arrivals and service
    times live on a virtual tick clock.  Every request is executed
    exactly once (speculatively, fanned out over the pool, results
    consumed in submission order), and admission, queueing delay and
    latency are then derived by simulating an M/c/K queue in virtual
    time — [servers] lanes and a bounded FIFO — where a request's
    service cost is its measured cycle count (or [failure_cost] for a
    non-[Ran] outcome) plus [build_miss_cost] on a logical cache miss.
    A logical miss is the first admission of a cache key in submission
    order ([use_cache = false] requests always miss).  The same traffic
    therefore produces byte-identical reports under [--jobs 1] and
    [--jobs 8].

    {b Telemetry.}  Each request executes against its own fresh
    session-scoped {!Telemetry.Sink} (no process-global registry is
    touched); the snapshots of admitted requests are then absorbed into
    the service's registry in submission order via
    {!Telemetry.Metrics.absorb}.  Rejected requests leave no trace in
    the service registry. *)

type config = {
  servers : int;  (** virtual service lanes (the M/c/K's c) *)
  queue_capacity : int;
      (** bounded waiting room; a request arriving when all lanes are
          busy and the room is full is shed as [Rejected] *)
  failure_cost : int;
      (** virtual ticks charged for a request whose outcome carries no
          cycle count (faults, source errors, ...) *)
  build_miss_cost : int;
      (** virtual ticks added to the first admission of each cache key
          (the build-tier cost a hit avoids) *)
}

val default_config : config
(** 4 lanes, a 64-request waiting room, 2000-tick failure cost,
    20000-tick build cost. *)

type t

val create : ?pool:Exec.Pool.t -> ?metrics:Telemetry.Metrics.t -> config -> t
(** [pool] fans request execution out (default serial — reports do not
    depend on it); [metrics] is the service registry absorbing
    per-request telemetry (default a fresh enabled registry). *)

val metrics : t -> Telemetry.Metrics.t

val submit : ?arrival:int -> t -> Harness.Request.t -> unit
(** Enqueue a request arriving at virtual time [arrival] (default: the
    previous arrival; arrivals are clamped monotonically non-decreasing).
    After {!shutdown}, submissions complete immediately as [Rejected]. *)

val drain : t -> unit
(** Execute everything submitted so far and classify every request into
    a completion.  Queue state (lane clocks, the logical cache) persists
    across drains, so [submit]/[drain] cycles compose. *)

val shutdown : t -> unit
(** {!drain} the in-flight requests — every one completes — then close
    the service.  Idempotent. *)

val is_shut_down : t -> bool

type completion = {
  r_request : Harness.Request.t;
  r_outcome : Harness.Outcome.t;
  r_arrival : int;
  r_start : int;  (** = [r_arrival] for rejected requests *)
  r_finish : int;
  r_cache_hit : bool;  (** logical build-tier hit *)
}

val completions : t -> completion list
(** Every completion so far, in submission order — exactly one per
    submitted request. *)

type report = {
  rp_submitted : int;
  rp_admitted : int;
  rp_rejected : int;
  rp_outcomes : (string * int) list;
      (** count per outcome class, every class present, exit-code order *)
  rp_unexpected : int;
      (** corruption + task-quarantined + internal-error completions:
          outcomes that must never occur *)
  rp_cache_hits : int;  (** logical build-tier hits *)
  rp_cache_misses : int;
  rp_makespan : int;  (** last finish - first arrival, virtual ticks *)
  rp_latency_p50 : int;  (** virtual ticks, from the service registry *)
  rp_latency_p90 : int;
  rp_latency_p99 : int;
  rp_labels : (string * int) list;  (** completions per request label *)
}

val report : t -> report

val hit_rate : report -> float
(** Logical hits / (hits + misses); 0 when nothing was admitted. *)

val throughput : report -> float
(** Admitted requests per thousand virtual ticks of makespan. *)

val pp_report : Format.formatter -> report -> unit
(** Deterministic rendering: no wall-clock, no worker-count
    dependence — what the CLI prints and CI diffs across job counts. *)

val report_to_json : ?wall_s:float -> t -> Telemetry.Json.t
(** The full report plus, when [wall_s] is given, wall-clock throughput,
    and the session-scoped build-cache counters
    ({!Harness.Build.session_stats} over a session opened at {!create} —
    the traffic this service instance caused, which agrees with the
    absorbed [build/cache/*] registry counters). *)
