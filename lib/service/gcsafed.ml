(** The service harness.  See the interface for the determinism and
    telemetry contracts. *)

module Build = Harness.Build
module Request = Harness.Request
module Outcome = Harness.Outcome
module Metrics = Telemetry.Metrics
module Json = Telemetry.Json

type config = {
  servers : int;
  queue_capacity : int;
  failure_cost : int;
  build_miss_cost : int;
}

let default_config =
  { servers = 4; queue_capacity = 64; failure_cost = 2000; build_miss_cost = 20000 }

type completion = {
  r_request : Request.t;
  r_outcome : Outcome.t;
  r_arrival : int;
  r_start : int;
  r_finish : int;
  r_cache_hit : bool;
  r_trace_id : int;
  r_queue_wait : int;
  r_build_ticks : int;
  r_vm_ticks : int;
  r_gc_max_pause_words : int;
  r_gc_total_pause_words : int;
}

type t = {
  cfg : config;
  pool : Exec.Pool.t;
  metrics : Metrics.t;
  ring : Telemetry.Flight_recorder.t;
  stream : Telemetry.Stream.t option;
  mutable pending : (int * Request.t) list;  (* reversed *)
  mutable completed : completion list;  (* reversed *)
  mutable last_arrival : int;
  mutable next_trace : int;
  lanes : int array;  (* per-lane virtual finish times *)
  seen : (string, unit) Hashtbl.t;  (* the logical build tier *)
  session : Build.session;  (* build-cache traffic attributable to us *)
  mutable closed : bool;
}

let create ?(pool = Exec.Pool.serial) ?metrics ?recorder_capacity ?events
    ?window cfg =
  let servers = max 1 cfg.servers in
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let stream =
    match events with
    | None -> None
    | Some emit -> Some (Telemetry.Stream.create ?window ~metrics ~emit ())
  in
  {
    cfg = { cfg with servers };
    pool;
    metrics;
    ring = Telemetry.Flight_recorder.create ?capacity:recorder_capacity ();
    stream;
    pending = [];
    completed = [];
    last_arrival = 0;
    next_trace = 1;
    lanes = Array.make servers 0;
    seen = Hashtbl.create 64;
    session = Build.new_session ();
    closed = false;
  }

let metrics t = t.metrics

let recorder t = t.ring

let dump t = Telemetry.Flight_recorder.dump t.ring

let is_shut_down t = t.closed

let tick t name = Metrics.incr (Metrics.counter t.metrics name)

let record_class t outcome =
  tick t ("service/outcome/" ^ Outcome.class_name outcome)

(* All ring events are recorded from serial sections (submit and the
   drain simulation), timestamped on the virtual clock, so the ring's
   contents — and the interleaved event lines on the stream — are
   byte-identical across worker counts. *)
let record_ev t ~ts kind args =
  Telemetry.Flight_recorder.record t.ring ~ts kind args;
  match t.stream with
  | None -> ()
  | Some s ->
      Telemetry.Stream.event s
        {
          Telemetry.Flight_recorder.fr_ordinal =
            Telemetry.Flight_recorder.recorded t.ring - 1;
          fr_ts = ts;
          fr_kind = kind;
          fr_args = args;
        }

let reject_completion req arrival detail =
  {
    r_request = req;
    r_outcome = Outcome.Rejected detail;
    r_arrival = arrival;
    r_start = arrival;
    r_finish = arrival;
    r_cache_hit = false;
    r_trace_id = req.Request.trace_id;
    r_queue_wait = 0;
    r_build_ticks = 0;
    r_vm_ticks = 0;
    r_gc_max_pause_words = 0;
    r_gc_total_pause_words = 0;
  }

let submit ?arrival t req =
  let a = max t.last_arrival (Option.value ~default:t.last_arrival arrival) in
  t.last_arrival <- a;
  (* stamp a service-unique trace id unless the caller chose one;
     deliberately outside the cache/matrix keys, so tracing never
     perturbs build sharing *)
  let req =
    if req.Request.trace_id = 0 then begin
      let id = t.next_trace in
      t.next_trace <- t.next_trace + 1;
      { req with Request.trace_id = id }
    end
    else req
  in
  if t.closed then begin
    let c = reject_completion req a "service shut down" in
    t.completed <- c :: t.completed;
    tick t "service/submitted";
    tick t "service/rejected";
    record_class t c.r_outcome;
    record_ev t ~ts:a "reject"
      [
        ("trace_id", Json.Int req.Request.trace_id);
        ("reason", Json.Str "service shut down");
      ]
  end
  else t.pending <- (a, req) :: t.pending

(* An admitted request waiting for (or holding) a lane. *)
type job = {
  j_idx : int;
  j_arrival : int;
  j_cost : int;
  j_request : Request.t;
  j_outcome : Outcome.t;
  j_hit : bool;
  j_build : int;  (* build-tier share of [j_cost] (0 on a hit) *)
  j_vm : int;  (* VM share of [j_cost]; j_build + j_vm = j_cost *)
  j_gc_max_pause : int;  (* largest GC pause inside the request, words *)
  j_gc_total_pause : int;
}

let min_lane lanes =
  let best = ref 0 in
  Array.iteri (fun i f -> if f < lanes.(!best) then best := i) lanes;
  !best

let drain t =
  let batch = List.rev t.pending in
  t.pending <- [];
  if batch <> [] then begin
    (* Speculative execution: every request runs exactly once, under its
       own session-scoped sink, fanned out over the pool; results are
       consumed in submission order, so nothing below depends on the
       worker count. *)
    let executed =
      Exec.Pool.map t.pool
        (fun (_, req) ->
          let m = Metrics.create () in
          let sink = Telemetry.Sink.make ~metrics:m () in
          let o = Outcome.execute ~telemetry:sink req in
          (o, Metrics.snapshot m))
        batch
    in
    let lanes = t.lanes in
    let waiting = Queue.create () in
    let n = List.length batch in
    let out = Array.make n None in
    let latency_h = Metrics.histogram t.metrics "service/latency_ticks" in
    let service_h = Metrics.histogram t.metrics "service/service_ticks" in
    let queue_h = Metrics.histogram t.metrics "service/phase/queue_wait_ticks" in
    let build_h = Metrics.histogram t.metrics "service/phase/build_ticks" in
    let vm_h = Metrics.histogram t.metrics "service/phase/vm_ticks" in
    let gc_pause_h = Metrics.histogram t.metrics "service/gc/max_pause_words" in
    let assign job =
      let l = min_lane lanes in
      let start = max lanes.(l) job.j_arrival in
      let finish = start + job.j_cost in
      lanes.(l) <- finish;
      let queue_wait = start - job.j_arrival in
      Metrics.observe latency_h (finish - job.j_arrival);
      Metrics.observe queue_h queue_wait;
      Metrics.observe build_h job.j_build;
      Metrics.observe vm_h job.j_vm;
      Metrics.observe gc_pause_h job.j_gc_max_pause;
      record_ev t ~ts:finish "request.end"
        [
          ("trace_id", Json.Int job.j_request.Request.trace_id);
          ("class", Json.Str (Outcome.class_name job.j_outcome));
          ("queue_wait", Json.Int queue_wait);
          ("build", Json.Int job.j_build);
          ("vm", Json.Int job.j_vm);
          ("gc_max_pause_words", Json.Int job.j_gc_max_pause);
        ];
      out.(job.j_idx) <-
        Some
          {
            r_request = job.j_request;
            r_outcome = job.j_outcome;
            r_arrival = job.j_arrival;
            r_start = start;
            r_finish = finish;
            r_cache_hit = job.j_hit;
            r_trace_id = job.j_request.Request.trace_id;
            r_queue_wait = queue_wait;
            r_build_ticks = job.j_build;
            r_vm_ticks = job.j_vm;
            r_gc_max_pause_words = job.j_gc_max_pause;
            r_gc_total_pause_words = job.j_gc_total_pause;
          }
    in
    List.iteri
      (fun idx ((arrival, req), (outcome, snap)) ->
        tick t "service/submitted";
        (match t.stream with
        | Some s -> Telemetry.Stream.advance s ~now:arrival
        | None -> ());
        (* lanes that finish by this arrival serve the waiting room first
           (FIFO: nobody overtakes the queue) *)
        while
          (not (Queue.is_empty waiting)) && lanes.(min_lane lanes) <= arrival
        do
          assign (Queue.pop waiting)
        done;
        let key = Request.cache_key req in
        let hit = req.Request.use_cache && Hashtbl.mem t.seen key in
        let base_cost =
          match outcome with
          | Outcome.Ran r -> max 1 r.Harness.Measure.o_cycles
          | _ -> t.cfg.failure_cost
        in
        let cost = base_cost + if hit then 0 else t.cfg.build_miss_cost in
        let lane_free = lanes.(min_lane lanes) <= arrival in
        if lane_free || Queue.length waiting < t.cfg.queue_capacity then begin
          (* admitted: the logical build tier warms on admission, in
             submission order *)
          if req.Request.use_cache then Hashtbl.replace t.seen key ();
          tick t "service/admitted";
          record_class t outcome;
          tick t (if hit then "service/cache/hits" else "service/cache/misses");
          record_ev t ~ts:arrival "request.begin"
            [
              ("trace_id", Json.Int req.Request.trace_id);
              ("cache_hit", Json.Bool hit);
            ];
          (match outcome with
          | Outcome.Ran r when r.Harness.Measure.o_emergency > 0 ->
              record_ev t ~ts:arrival "gc.emergency"
                [
                  ("trace_id", Json.Int req.Request.trace_id);
                  ("count", Json.Int r.Harness.Measure.o_emergency);
                ]
          | _ -> ());
          (match (req.Request.gc_pause_budget, outcome) with
          | Some budget, Outcome.Ran r
            when req.Request.gc_mode = Gcheap.Heap.Inc ->
              (* the request named a pause SLO: every increment within
                 budget is "met"; a single overrun violates it *)
              if r.Harness.Measure.o_inc_overruns > 0 then begin
                tick t "service/slo/violated";
                record_ev t ~ts:arrival "slo.violation"
                  [
                    ("trace_id", Json.Int req.Request.trace_id);
                    ("budget_words", Json.Int budget);
                    ( "overruns",
                      Json.Int r.Harness.Measure.o_inc_overruns );
                    ( "max_pause_words",
                      Json.Int r.Harness.Measure.o_inc_max_pause );
                  ]
              end
              else tick t "service/slo/met"
          | _ -> ());
          Metrics.observe service_h cost;
          Metrics.absorb t.metrics snap;
          let build = if hit then 0 else t.cfg.build_miss_cost in
          let gc_max, gc_total =
            match outcome with
            | Outcome.Ran r ->
                ( r.Harness.Measure.o_gc_max_pause_words,
                  r.Harness.Measure.o_gc_total_pause_words )
            | _ -> (0, 0)
          in
          let job =
            {
              j_idx = idx;
              j_arrival = arrival;
              j_cost = cost;
              j_request = req;
              j_outcome = outcome;
              j_hit = hit;
              j_build = build;
              j_vm = base_cost;
              j_gc_max_pause = gc_max;
              j_gc_total_pause = gc_total;
            }
          in
          if lane_free then assign job else Queue.push job waiting
        end
        else begin
          (* shed: a structured outcome; only the build-tier slice of the
             telemetry is absorbed — the speculative execution really did
             hit the shared artifact cache, and dropping those counters
             is what made the registry's [build/cache/*] disagree with
             the cache's own accounting.  VM/service metrics of a shed
             request stay dropped: the service never served it. *)
          Metrics.absorb t.metrics
            (List.filter
               (fun (name, _) -> String.starts_with ~prefix:"build/" name)
               snap);
          tick t "service/rejected";
          let c =
            reject_completion req arrival
              (Printf.sprintf "queue full (capacity %d)" t.cfg.queue_capacity)
          in
          record_class t c.r_outcome;
          out.(idx) <- Some c
        end)
      (List.combine batch executed);
    (* drain-on-shutdown semantics: everything in the waiting room is
       served before the batch completes *)
    while not (Queue.is_empty waiting) do
      assign (Queue.pop waiting)
    done;
    Array.iter
      (function
        | Some c -> t.completed <- c :: t.completed | None -> assert false)
      out
  end

let shutdown t =
  drain t;
  (match t.stream with
  | None -> ()
  | Some s ->
      let now = Array.fold_left max t.last_arrival t.lanes in
      Telemetry.Stream.finish s ~now);
  t.closed <- true

let completions t = List.rev t.completed

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

type report = {
  rp_submitted : int;
  rp_admitted : int;
  rp_rejected : int;
  rp_outcomes : (string * int) list;
  rp_unexpected : int;
  rp_cache_hits : int;
  rp_cache_misses : int;
  rp_makespan : int;
  rp_latency_p50 : int;
  rp_latency_p90 : int;
  rp_latency_p99 : int;
  rp_labels : (string * int) list;
  rp_queue_wait : int;  (** summed queue-wait ticks over admitted requests *)
  rp_build_ticks : int;  (** summed build-tier ticks *)
  rp_vm_ticks : int;  (** summed VM ticks *)
  rp_total_latency : int;  (** summed finish − arrival; equals the three
                               phase sums added together *)
  rp_gc_max_pause_words : int;  (** worst single GC pause across requests *)
  rp_gc_total_pause_words : int;
  rp_slo_met : int;
  rp_slo_violated : int;
}

let unexpected_classes = [ "corruption"; "task-quarantined"; "internal-error" ]

let report t =
  let cs = completions t in
  let tally = Hashtbl.create 16 in
  let labels = Hashtbl.create 16 in
  let bump tbl key =
    Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  in
  let rejected = ref 0 and hits = ref 0 and misses = ref 0 in
  let first_arrival = ref max_int and last_finish = ref 0 in
  let queue_wait = ref 0 and build = ref 0 and vm = ref 0 in
  let total_latency = ref 0 in
  let gc_max = ref 0 and gc_total = ref 0 in
  List.iter
    (fun c ->
      bump tally (Outcome.class_name c.r_outcome);
      bump labels (if c.r_request.Request.label = "" then "(unlabeled)" else c.r_request.Request.label);
      first_arrival := min !first_arrival c.r_arrival;
      last_finish := max !last_finish c.r_finish;
      queue_wait := !queue_wait + c.r_queue_wait;
      build := !build + c.r_build_ticks;
      vm := !vm + c.r_vm_ticks;
      total_latency := !total_latency + (c.r_finish - c.r_arrival);
      gc_max := max !gc_max c.r_gc_max_pause_words;
      gc_total := !gc_total + c.r_gc_total_pause_words;
      match c.r_outcome with
      | Outcome.Rejected _ -> incr rejected
      | _ -> if c.r_cache_hit then incr hits else incr misses)
    cs;
  let count name = Option.value ~default:0 (Hashtbl.find_opt tally name) in
  let counter name =
    match Metrics.find (Metrics.snapshot t.metrics) name with
    | Some (Metrics.Counter n) -> n
    | _ -> 0
  in
  let latency p =
    match Metrics.find (Metrics.snapshot t.metrics) "service/latency_ticks" with
    | Some (Metrics.Histogram { buckets; _ }) -> Metrics.percentile buckets p
    | _ -> 0
  in
  {
    rp_submitted = List.length cs;
    rp_admitted = List.length cs - !rejected;
    rp_rejected = !rejected;
    rp_outcomes = List.map (fun name -> (name, count name)) Outcome.all_class_names;
    rp_unexpected =
      List.fold_left (fun acc name -> acc + count name) 0 unexpected_classes;
    rp_cache_hits = !hits;
    rp_cache_misses = !misses;
    rp_makespan = (if cs = [] then 0 else !last_finish - !first_arrival);
    rp_latency_p50 = latency 0.50;
    rp_latency_p90 = latency 0.90;
    rp_latency_p99 = latency 0.99;
    rp_labels =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) labels []);
    rp_queue_wait = !queue_wait;
    rp_build_ticks = !build;
    rp_vm_ticks = !vm;
    rp_total_latency = !total_latency;
    rp_gc_max_pause_words = !gc_max;
    rp_gc_total_pause_words = !gc_total;
    rp_slo_met = counter "service/slo/met";
    rp_slo_violated = counter "service/slo/violated";
  }

let hit_rate r =
  let total = r.rp_cache_hits + r.rp_cache_misses in
  if total = 0 then 0. else float_of_int r.rp_cache_hits /. float_of_int total

let throughput r =
  if r.rp_makespan = 0 then 0.
  else 1000. *. float_of_int r.rp_admitted /. float_of_int r.rp_makespan

let burn_rate r =
  let total = r.rp_slo_met + r.rp_slo_violated in
  if total = 0 then 0. else float_of_int r.rp_slo_violated /. float_of_int total

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "gcsafed: %d submitted, %d admitted, %d rejected@,"
    r.rp_submitted r.rp_admitted r.rp_rejected;
  Format.fprintf ppf "  outcomes:";
  List.iter (fun (name, n) -> Format.fprintf ppf " %s=%d" name n) r.rp_outcomes;
  Format.fprintf ppf "@,";
  Format.fprintf ppf "  build tier: %d hit(s), %d miss(es), hit rate %.3f@,"
    r.rp_cache_hits r.rp_cache_misses (hit_rate r);
  Format.fprintf ppf "  latency ticks: p50=%d p90=%d p99=%d@," r.rp_latency_p50
    r.rp_latency_p90 r.rp_latency_p99;
  Format.fprintf ppf
    "  phases: queue_wait=%d build=%d vm=%d (total latency %d)@,"
    r.rp_queue_wait r.rp_build_ticks r.rp_vm_ticks r.rp_total_latency;
  Format.fprintf ppf "  gc pause words: max=%d total=%d@,"
    r.rp_gc_max_pause_words r.rp_gc_total_pause_words;
  if r.rp_slo_met + r.rp_slo_violated > 0 then
    Format.fprintf ppf "  slo: met=%d violated=%d burn=%.3f@," r.rp_slo_met
      r.rp_slo_violated (burn_rate r);
  Format.fprintf ppf
    "  makespan %d tick(s), throughput %.3f admitted/ktick@," r.rp_makespan
    (throughput r);
  (match r.rp_labels with
  | [] -> ()
  | labels ->
      Format.fprintf ppf "  traffic:";
      List.iter (fun (name, n) -> Format.fprintf ppf " %s=%d" name n) labels;
      Format.fprintf ppf "@,");
  Format.fprintf ppf "  unexpected: %d@," r.rp_unexpected;
  Format.fprintf ppf "@]"

let report_to_json ?wall_s t =
  let r = report t in
  (* session-scoped: only the build traffic this service instance caused,
     so the numbers agree with the absorbed [build/cache/*] counters in
     [metrics] instead of picking up unrelated process-wide traffic *)
  let cache = Build.session_stats t.session in
  let base =
    [
      ("submitted", Json.Int r.rp_submitted);
      ("admitted", Json.Int r.rp_admitted);
      ("rejected", Json.Int r.rp_rejected);
      ( "outcomes",
        Json.Obj (List.map (fun (name, n) -> (name, Json.Int n)) r.rp_outcomes)
      );
      ("unexpected", Json.Int r.rp_unexpected);
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int r.rp_cache_hits);
            ("misses", Json.Int r.rp_cache_misses);
            ("hit_rate", Json.Float (hit_rate r));
          ] );
      ( "build_cache",
        Json.Obj
          [
            ("hits", Json.Int cache.Exec.Cache.hits);
            ("misses", Json.Int cache.Exec.Cache.misses);
            ("evictions", Json.Int cache.Exec.Cache.evictions);
            ("corruptions", Json.Int cache.Exec.Cache.corruptions);
            ("entries", Json.Int cache.Exec.Cache.entries);
          ] );
      ( "latency_ticks",
        Json.Obj
          [
            ("p50", Json.Int r.rp_latency_p50);
            ("p90", Json.Int r.rp_latency_p90);
            ("p99", Json.Int r.rp_latency_p99);
          ] );
      ("makespan_ticks", Json.Int r.rp_makespan);
      ("throughput_per_ktick", Json.Float (throughput r));
      ( "phases",
        Json.Obj
          [
            ("queue_wait", Json.Int r.rp_queue_wait);
            ("build", Json.Int r.rp_build_ticks);
            ("vm", Json.Int r.rp_vm_ticks);
            ("total_latency", Json.Int r.rp_total_latency);
          ] );
      ( "gc_pause_words",
        Json.Obj
          [
            ("max", Json.Int r.rp_gc_max_pause_words);
            ("total", Json.Int r.rp_gc_total_pause_words);
          ] );
      ( "slo",
        Json.Obj
          [
            ("met", Json.Int r.rp_slo_met);
            ("violated", Json.Int r.rp_slo_violated);
            ("burn_rate", Json.Float (burn_rate r));
          ] );
      ( "flight_recorder",
        Json.Obj
          [
            ( "capacity",
              Json.Int (Telemetry.Flight_recorder.capacity t.ring) );
            ( "recorded",
              Json.Int (Telemetry.Flight_recorder.recorded t.ring) );
            ("dropped", Json.Int (Telemetry.Flight_recorder.dropped t.ring));
          ] );
      ( "traffic",
        Json.Obj (List.map (fun (name, n) -> (name, Json.Int n)) r.rp_labels) );
    ]
  in
  let wall =
    match wall_s with
    | None -> []
    | Some s ->
        [
          ( "wall",
            Json.Obj
              [
                ("seconds", Json.Float s);
                ( "requests_per_s",
                  Json.Float
                    (if s > 0. then float_of_int r.rp_submitted /. s else 0.) );
              ] );
        ]
  in
  Json.Obj (base @ wall @ [ ("metrics", Metrics.to_json (Metrics.snapshot t.metrics)) ])
