(** The open-loop traffic generator: coverage-guided request streams for
    {!Gcsafed}.

    A spec expands deterministically (seeded, no wall-clock, no
    [Random]) into a list of timestamped requests that sweep the
    scenario space: generated mini-C programs in the shape of the
    property-based test generator, the stress example corpus, the
    paper's measured workloads — crossed with build configurations,
    machine models, analyses, collector modes and schedules, with a
    configurable chaos fraction (heap ceilings, OOM policies, injected
    allocation failures) and a sliver of malformed sources so the
    source-error path stays covered.  Arrival times are open-loop: a
    seeded interarrival process that does not wait for completions. *)

type mix =
  | All  (** generated + examples + workloads (workloads rationed) *)
  | Generated  (** seeded mini-C programs only *)
  | Examples  (** the stress example corpus only *)
  | Workloads  (** the paper's measured workloads only *)

val mix_name : mix -> string

val mix_of_string : string -> mix option
(** ["all" | "generated" | "examples" | "workloads"]. *)

type spec = {
  g_requests : int;
  g_seed : int;
  g_mix : mix;
  g_mean_gap : int;  (** mean virtual-tick interarrival (>= 1) *)
  g_chaos_percent : int;
      (** percentage of requests perturbed with heap ceilings, trap
          policies or injected allocation failures (0-100) *)
}

val default_spec : spec
(** 1000 requests, seed 0, [All], mean gap 50000 ticks, 10% chaos. *)

val source_pool : seed:int -> int -> string list
(** [source_pool ~seed n]: [n] distinct generated programs — the pool a
    spec's generated traffic draws from (exposed for tests). *)

val generate : spec -> (int * Harness.Request.t) list
(** The request stream: (arrival tick, request) in arrival order.
    Deterministic in the spec.  Request labels name the scenario
    ("gen/safe", "workload/cfrac+chaos", ...), so service reports break
    traffic down by scenario. *)
