(** The open-loop traffic generator.  See the interface for the
    contract.

    Everything here is a pure function of the spec: the PRNG is an
    explicit xorshift state, so the same spec always produces the same
    stream — a bomb run is replayable by seed, like a chaos sweep. *)

module Request = Harness.Request
module Build = Harness.Build

(* ------------------------------------------------------------------ *)
(* A seeded PRNG (xorshift64 on OCaml's 63-bit int)                    *)
(* ------------------------------------------------------------------ *)

type rand = { mutable state : int }

let rand_make seed = { state = (Hashtbl.hash (seed, 0x6763736166) lor 1) }

let next r =
  let x = r.state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  let x = x land max_int in
  let x = if x = 0 then 0x9e3779b9 else x in
  r.state <- x;
  x

(* uniform in [0, n) *)
let below r n = if n <= 0 then 0 else next r mod n

(* uniform in [lo, hi] *)
let range r lo hi = lo + below r (hi - lo + 1)

let pick r l = List.nth l (below r (List.length l))

(* ------------------------------------------------------------------ *)
(* Generated mini-C programs (the test generator's shapes, seeded)     *)
(* ------------------------------------------------------------------ *)

(* The same strictly-conforming subset the property-based test
   generator emits: pointer arithmetic stays inside the heap array,
   divisors are forced odd, shifts are bounded, loops are counted — so
   every generated program terminates and checked builds accept it. *)

let int_vars = [ "a"; "b"; "c"; "d" ]

let heap_len = 16

let rec int_expr r depth =
  if depth = 0 then
    match below r 4 with
    | 0 -> string_of_int (range r (-50) 50)
    | 1 -> pick r int_vars
    | 2 -> "g0"
    | _ -> "g1"
  else
    match below r 16 with
    | 0 | 1 -> int_expr r 0
    | 2 | 3 ->
        Printf.sprintf "(%s + %s)" (int_expr r (depth - 1)) (int_expr r (depth - 1))
    | 4 | 5 ->
        Printf.sprintf "(%s - %s)" (int_expr r (depth - 1)) (int_expr r (depth - 1))
    | 6 -> Printf.sprintf "(%s * %s)" (int_expr r (depth - 1)) (int_expr r 0)
    | 7 -> Printf.sprintf "(%s / (%s | 1))" (int_expr r (depth - 1)) (int_expr r 0)
    | 8 -> Printf.sprintf "(%s %% (%s | 1))" (int_expr r (depth - 1)) (int_expr r 0)
    | 9 ->
        Printf.sprintf "(%s & %s)" (int_expr r (depth - 1)) (int_expr r (depth - 1))
    | 10 ->
        Printf.sprintf "(%s ^ %s)" (int_expr r (depth - 1)) (int_expr r (depth - 1))
    | 11 -> Printf.sprintf "(%s << 2)" (int_expr r (depth - 1))
    | 12 -> Printf.sprintf "(%s >> 3)" (int_expr r (depth - 1))
    | 13 ->
        Printf.sprintf "(%s < %s)" (int_expr r (depth - 1)) (int_expr r (depth - 1))
    | 14 -> Printf.sprintf "h[(%s) & 15]" (int_expr r (depth - 1))
    | _ -> "*p"

let index_expr r depth = Printf.sprintf "((%s) & 15)" (int_expr r depth)

let rec stmt r depth =
  match below r 12 with
  | 0 | 1 -> Printf.sprintf "%s = %s;" (pick r int_vars) (int_expr r 2)
  | 2 -> Printf.sprintf "h[%s] = %s;" (index_expr r 1) (int_expr r 2)
  | 3 -> Printf.sprintf "p = h + %s;" (index_expr r 1)
  | 4 -> "q = p;"
  | 5 -> Printf.sprintf "*p = %s;" (int_expr r 1)
  | 6 -> Printf.sprintf "%s = *p + *q;" (pick r int_vars)
  | 7 -> "g0 = g0 + 1;"
  | 8 -> Printf.sprintf "p = h; p += %s; g1 = g1 ^ *p;" (index_expr r 1)
  | 9 ->
      if depth = 0 then "g0++;"
      else
        Printf.sprintf "if (%s) {\n%s} else {\n%s}" (int_expr r 1)
          (block r (depth - 1) 2)
          (block r (depth - 1) 2)
  | 10 ->
      if depth = 0 then "g1++;"
      else
        (* one counter per nesting level, as in the test generator: a
           shared counter would make inner loops reset the outer bound *)
        let tv = if depth >= 2 then "t" else "u" in
        let n = range r 2 6 in
        Printf.sprintf "for (%s = 0; %s < %d; %s++) {\n%s}" tv tv n tv
          (block r (depth - 1) 2)
  | _ -> Printf.sprintf "print_int(%s); putchar(10);" (int_expr r 1)

and block r depth n =
  String.concat "\n" (List.init n (fun _ -> stmt r depth)) ^ "\n"

let program r =
  let n = range r 4 12 in
  let body = block r 2 n in
  Printf.sprintf
    {|long g0; long g1;
int main(void) {
  long a = 1; long b = 2; long c = 3; long d = 4; long t = 0; long u = 0;
  long *h = (long *)malloc(%d * sizeof(long));
  long *p; long *q;
  int i;
  for (i = 0; i < %d; i++) h[i] = i * 7;
  p = h; q = h + 5;
%s
  /* digest */
  print_int(a); print_int(b); print_int(c); print_int(d);
  print_int(g0); print_int(g1);
  for (i = 0; i < %d; i++) print_int(h[i]);
  print_int(p - h); print_int(q - h);
  putchar(10);
  return 0;
}|}
    heap_len heap_len body heap_len

let source_pool ~seed n =
  let r = rand_make seed in
  List.init n (fun _ -> program r)

(* a request the service must classify as a source error *)
let malformed = "int main(void) { return g; }"

(* ------------------------------------------------------------------ *)
(* Specs and streams                                                   *)
(* ------------------------------------------------------------------ *)

type mix = All | Generated | Examples | Workloads

let mix_name = function
  | All -> "all"
  | Generated -> "generated"
  | Examples -> "examples"
  | Workloads -> "workloads"

let mix_of_string = function
  | "all" -> Some All
  | "generated" -> Some Generated
  | "examples" -> Some Examples
  | "workloads" -> Some Workloads
  | _ -> None

type spec = {
  g_requests : int;
  g_seed : int;
  g_mix : mix;
  g_mean_gap : int;
  g_chaos_percent : int;
}

let default_spec =
  {
    g_requests = 1000;
    g_seed = 0;
    g_mix = All;
    g_mean_gap = 50_000;
    g_chaos_percent = 10;
  }

let machines =
  [
    Machine.Machdesc.sparc2;
    Machine.Machdesc.sparc10;
    Machine.Machdesc.pentium90;
  ]

(* The chaos dimension: heap ceilings, trap policies, injected
   allocation failures — each must surface as a structured outcome. *)
let chaos_fields r =
  match below r 4 with
  | 0 -> (range r 20_000 60_000, Gcheap.Heap.Collect_expand, Gcheap.Failpoint.Never)
  | 1 -> (range r 300 2_000, Gcheap.Heap.Trap, Gcheap.Failpoint.Never)
  | 2 -> (0, Gcheap.Heap.Collect_expand, Gcheap.Failpoint.Nth (range r 1 50))
  | _ ->
      ( 0,
        (if below r 2 = 0 then Gcheap.Heap.Trap else Gcheap.Heap.Collect_expand),
        Gcheap.Failpoint.Every (range r 10 100) )

let schedule_of r =
  match below r 8 with
  | 0 | 1 -> Machine.Schedule.Every (range r 1 7)
  | 2 -> Machine.Schedule.At_allocs
  | _ -> Machine.Schedule.Auto

let generate (spec : spec) : (int * Request.t) list =
  let r = rand_make spec.g_seed in
  let pool = source_pool ~seed:(spec.g_seed + 1) 64 in
  let examples = Stress.Corpus.examples in
  let workloads = Workloads.Registry.paper_suite in
  let arrival = ref 0 in
  List.init (max 0 spec.g_requests) (fun i ->
      arrival := !arrival + range r 1 (max 1 ((2 * spec.g_mean_gap) - 1));
      (* scenario: where the source comes from.  Workloads are rationed
         under [All] — they are orders of magnitude larger than the
         generated programs. *)
      let family, label0, source =
        let from_workloads () =
          let w = pick r workloads in
          (`Workload, "workload/" ^ w.Workloads.Registry.w_name, w.Workloads.Registry.w_source)
        in
        let from_examples () =
          let t = pick r examples in
          (`Example, "example/" ^ t.Stress.Corpus.t_name, t.Stress.Corpus.t_source)
        in
        let from_pool () = (`Gen, "gen", pick r pool) in
        match spec.g_mix with
        | Generated -> from_pool ()
        | Examples -> from_examples ()
        | Workloads -> from_workloads ()
        | All ->
            if i mod 101 = 100 then from_workloads ()
            else if i mod 13 = 12 then from_examples ()
            else from_pool ()
      in
      let config = pick r Build.all_configs in
      let machine = pick r machines in
      let analysis =
        if Build.preprocessed config && below r 4 = 0 then Gcsafe.Mode.A_none
        else Gcsafe.Mode.A_flow
      in
      let gc_mode =
        match below r 3 with
        | 0 -> Gcheap.Heap.Gen
        | 1 -> Gcheap.Heap.Inc
        | _ -> Gcheap.Heap.Stw
      in
      (* incremental requests carry a pause SLO, spread over the budgets
         the bench sweeps, so the service's slo counters stay hot *)
      let gc_pause_budget =
        if gc_mode = Gcheap.Heap.Inc then
          Some (pick r [ 256; 512; 1024; 2048; 4096 ])
        else None
      in
      (* forced-collection schedules and the post-collection sanitizer
         are for the small sources only: a measured workload under
         Every-1 does millions of collections and stalls the stream *)
      let small = family <> `Workload in
      let schedule = if small then schedule_of r else Machine.Schedule.Auto in
      let chaotic = below r 100 < spec.g_chaos_percent in
      (* a sliver of malformed traffic keeps the source-error path hot;
         generated slots only, so example/workload labels stay honest *)
      let bad = family = `Gen && below r 50 = 0 in
      let source = if bad then malformed else source in
      let heap_limit, oom_policy, alloc_failpoints =
        if chaotic then chaos_fields r
        else (0, Gcheap.Heap.Collect_expand, Gcheap.Failpoint.Never)
      in
      let label =
        label0 ^ (if chaotic then "+chaos" else "") ^ if bad then "+bad" else ""
      in
      let req =
        Request.make ~label ~config ~machine ~analysis ~gc_mode
          ?gc_pause_budget ~schedule
          ~check_integrity:(small && below r 4 = 0)
          ~final_collect:(below r 2 = 0)
          ~max_instrs:5_000_000 ~heap_limit ~oom_policy ~alloc_failpoints
          source
      in
      (!arrival, req))
