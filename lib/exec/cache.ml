(** Single-flight memo cache with LRU eviction and counters.

    Slots are [Building] while a builder is in flight, so concurrent
    domains asking for the same key block on [settled] instead of
    duplicating work.  Builders run outside the lock: distinct keys build
    in parallel. *)

type 'v slot = Ready of 'v | Building

type 'v t = {
  lock : Mutex.t;
  settled : Condition.t;  (** broadcast when a Building slot resolves *)
  table : (string, 'v slot) Hashtbl.t;
  last_use : (string, int) Hashtbl.t;
  mutable clock : int;
  capacity : int option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int; entries : int }

let create ?capacity () =
  {
    lock = Mutex.create ();
    settled = Condition.create ();
    table = Hashtbl.create 64;
    last_use = Hashtbl.create 64;
    clock = 0;
    capacity;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let touch t key =
  t.clock <- t.clock + 1;
  Hashtbl.replace t.last_use key t.clock

(* Called under the lock, after inserting [fresh]: evict finished
   artifacts, oldest use first, until within capacity.  In-flight slots
   and the entry just inserted are never evicted. *)
let enforce_capacity t ~fresh =
  match t.capacity with
  | None -> ()
  | Some cap ->
      let ready_count () =
        Hashtbl.fold
          (fun _ slot n -> match slot with Ready _ -> n + 1 | Building -> n)
          t.table 0
      in
      while ready_count () > max 1 cap do
        let victim =
          Hashtbl.fold
            (fun key slot acc ->
              match slot with
              | Building -> acc
              | Ready _ when key = fresh -> acc
              | Ready _ -> (
                  let use =
                    Option.value ~default:0 (Hashtbl.find_opt t.last_use key)
                  in
                  match acc with
                  | Some (_, best) when best <= use -> acc
                  | _ -> Some (key, use)))
            t.table None
        in
        match victim with
        | None -> raise Exit
        | Some (key, _) ->
            Hashtbl.remove t.table key;
            Hashtbl.remove t.last_use key;
            t.evictions <- t.evictions + 1
      done

let enforce_capacity t ~fresh =
  try enforce_capacity t ~fresh with Exit -> ()

let rec find_or_build_outcome t key build =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table key with
  | Some (Ready v) ->
      t.hits <- t.hits + 1;
      touch t key;
      Mutex.unlock t.lock;
      (v, true)
  | Some Building ->
      (* The in-flight builder broadcasts on resolution (or on failure,
         after releasing the slot — then one waiter retries as builder). *)
      Condition.wait t.settled t.lock;
      Mutex.unlock t.lock;
      find_or_build_outcome t key build
  | None -> (
      t.misses <- t.misses + 1;
      Hashtbl.replace t.table key Building;
      Mutex.unlock t.lock;
      match build () with
      | v ->
          Mutex.lock t.lock;
          Hashtbl.replace t.table key (Ready v);
          touch t key;
          enforce_capacity t ~fresh:key;
          Condition.broadcast t.settled;
          Mutex.unlock t.lock;
          (v, false)
      | exception e ->
          Mutex.lock t.lock;
          Hashtbl.remove t.table key;
          Hashtbl.remove t.last_use key;
          Condition.broadcast t.settled;
          Mutex.unlock t.lock;
          raise e)

let find_or_build t key build = fst (find_or_build_outcome t key build)

let mem t key =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.table key with
    | Some (Ready _) -> true
    | Some Building | None -> false
  in
  Mutex.unlock t.lock;
  r

let clear t =
  Mutex.lock t.lock;
  let keys =
    Hashtbl.fold
      (fun key slot acc ->
        match slot with Ready _ -> key :: acc | Building -> acc)
      t.table []
  in
  List.iter
    (fun key ->
      Hashtbl.remove t.table key;
      Hashtbl.remove t.last_use key)
    keys;
  Mutex.unlock t.lock

let stats t =
  Mutex.lock t.lock;
  let entries =
    Hashtbl.fold
      (fun _ slot n -> match slot with Ready _ -> n + 1 | Building -> n)
      t.table 0
  in
  let s =
    { hits = t.hits; misses = t.misses; evictions = t.evictions; entries }
  in
  Mutex.unlock t.lock;
  s

let reset_stats t =
  Mutex.lock t.lock;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  Mutex.unlock t.lock

let hit_rate (s : stats) =
  let lookups = s.hits + s.misses in
  if lookups = 0 then 0.0 else float_of_int s.hits /. float_of_int lookups
