(** Single-flight memo cache with LRU eviction, counters, and optional
    artifact fingerprinting.

    Slots are [Building] while a builder is in flight, so concurrent
    domains asking for the same key block on [settled] instead of
    duplicating work.  Builders run outside the lock: distinct keys build
    in parallel.

    When a fingerprint function is installed, every artifact's digest is
    recorded at insertion and re-verified on every hit; a mismatch (a
    corrupted artifact) is counted, the entry is evicted, and the request
    falls through to an ordinary single-flight rebuild — a rotten
    artifact is never served. *)

type 'v slot = Ready of 'v * string option | Building

type 'v t = {
  lock : Mutex.t;
  settled : Condition.t;  (** broadcast when a Building slot resolves *)
  table : (string, 'v slot) Hashtbl.t;
  last_use : (string, int) Hashtbl.t;
  mutable clock : int;
  capacity : int option;
  fingerprint : ('v -> string) option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable corruptions : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  corruptions : int;
  entries : int;
}

let create ?capacity ?fingerprint () =
  {
    lock = Mutex.create ();
    settled = Condition.create ();
    table = Hashtbl.create 64;
    last_use = Hashtbl.create 64;
    clock = 0;
    capacity;
    fingerprint;
    hits = 0;
    misses = 0;
    evictions = 0;
    corruptions = 0;
  }

let touch t key =
  t.clock <- t.clock + 1;
  Hashtbl.replace t.last_use key t.clock

(* Called under the lock, after inserting [fresh]: evict finished
   artifacts, oldest use first, until within capacity.  In-flight slots
   and the entry just inserted are never evicted. *)
let enforce_capacity t ~fresh =
  match t.capacity with
  | None -> ()
  | Some cap ->
      let ready_count () =
        Hashtbl.fold
          (fun _ slot n -> match slot with Ready _ -> n + 1 | Building -> n)
          t.table 0
      in
      while ready_count () > max 1 cap do
        let victim =
          Hashtbl.fold
            (fun key slot acc ->
              match slot with
              | Building -> acc
              | Ready _ when key = fresh -> acc
              | Ready _ -> (
                  let use =
                    Option.value ~default:0 (Hashtbl.find_opt t.last_use key)
                  in
                  match acc with
                  | Some (_, best) when best <= use -> acc
                  | _ -> Some (key, use)))
            t.table None
        in
        match victim with
        | None -> raise Exit
        | Some (key, _) ->
            Hashtbl.remove t.table key;
            Hashtbl.remove t.last_use key;
            t.evictions <- t.evictions + 1
      done

let enforce_capacity t ~fresh =
  try enforce_capacity t ~fresh with Exit -> ()

(* Release a Building slot whose builder failed.  Centralized so the
   single-flight invariant — a Building slot always resolves, and every
   waiter is woken exactly when it does — is enforced in one place: the
   slot is removed (the key is free to rebuild) and [settled] is
   broadcast (no waiter can sleep through the failure; the builder must
   take the lock to settle, and waiters hold it from their slot check
   until they wait, so there is no wake-up to miss). *)
let release_failed t key =
  Mutex.lock t.lock;
  Hashtbl.remove t.table key;
  Hashtbl.remove t.last_use key;
  Condition.broadcast t.settled;
  Mutex.unlock t.lock

let rec find_or_build_outcome t key build =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table key with
  | Some (Ready (v, fp)) -> (
      let corrupted =
        match (t.fingerprint, fp) with
        | Some f, Some expected -> not (String.equal (f v) expected)
        | _ -> false
      in
      if not corrupted then begin
        t.hits <- t.hits + 1;
        touch t key;
        Mutex.unlock t.lock;
        (v, true)
      end
      else begin
        (* the artifact rotted under us: count it, evict it, and fall
           through to an ordinary single-flight rebuild *)
        t.corruptions <- t.corruptions + 1;
        Hashtbl.remove t.table key;
        Hashtbl.remove t.last_use key;
        Mutex.unlock t.lock;
        find_or_build_outcome t key build
      end)
  | Some Building ->
      (* The in-flight builder broadcasts on resolution (or on failure,
         after releasing the slot — then one waiter retries as builder). *)
      Condition.wait t.settled t.lock;
      Mutex.unlock t.lock;
      find_or_build_outcome t key build
  | None ->
      Hashtbl.replace t.table key Building;
      Mutex.unlock t.lock;
      (* the Building slot must resolve no matter how [build] exits *)
      let v =
        try build ()
        with e ->
          release_failed t key;
          raise e
      in
      let fp = Option.map (fun f -> f v) t.fingerprint in
      Mutex.lock t.lock;
      (* a miss is counted when the build settles, not at lookup: a
         failed build populates nothing, and every accounting layer
         above (the registry's [build/cache/misses], session deltas)
         counts settled builds — keeping the cache's own counter on the
         same basis makes the layers agree by construction *)
      t.misses <- t.misses + 1;
      Hashtbl.replace t.table key (Ready (v, fp));
      touch t key;
      enforce_capacity t ~fresh:key;
      Condition.broadcast t.settled;
      Mutex.unlock t.lock;
      (v, false)

let find_or_build t key build = fst (find_or_build_outcome t key build)

let mem t key =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.table key with
    | Some (Ready _) -> true
    | Some Building | None -> false
  in
  Mutex.unlock t.lock;
  r

(** Chaos hook: overwrite the finished artifact under [key] with
    [mutate v] {e without} refreshing its recorded fingerprint, exactly
    what an artifact rotting at rest looks like.  Returns whether an
    artifact was there to corrupt. *)
let corrupt t key mutate =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.table key with
    | Some (Ready (v, fp)) ->
        Hashtbl.replace t.table key (Ready (mutate v, fp));
        true
    | Some Building | None -> false
  in
  Mutex.unlock t.lock;
  r

let clear t =
  Mutex.lock t.lock;
  let keys =
    Hashtbl.fold
      (fun key slot acc ->
        match slot with Ready _ -> key :: acc | Building -> acc)
      t.table []
  in
  List.iter
    (fun key ->
      Hashtbl.remove t.table key;
      Hashtbl.remove t.last_use key)
    keys;
  Mutex.unlock t.lock

let stats t =
  Mutex.lock t.lock;
  let entries =
    Hashtbl.fold
      (fun _ slot n -> match slot with Ready _ -> n + 1 | Building -> n)
      t.table 0
  in
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      corruptions = t.corruptions;
      entries;
    }
  in
  Mutex.unlock t.lock;
  s

let reset_stats t =
  Mutex.lock t.lock;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.corruptions <- 0;
  Mutex.unlock t.lock

let hit_rate (s : stats) =
  let lookups = s.hits + s.misses in
  if lookups = 0 then 0.0 else float_of_int s.hits /. float_of_int lookups
