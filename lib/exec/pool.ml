(** Domain-based worker pool over a bounded work queue.

    The queue holds closures; {!map} fans a task list out over the
    workers and reassembles results by input index, so callers see
    deterministic ordering no matter how the domains interleave.  The
    queue bound keeps a huge schedule space from materializing thousands
    of closures at once: submission blocks until a worker frees a slot. *)

type task = Run of (unit -> unit) | Stop

type t = {
  p_jobs : int;
  queue : task Queue.t;
  capacity : int;
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let recommended_jobs () = Domain.recommended_domain_count ()

let jobs t = t.p_jobs

let push t task =
  Mutex.lock t.lock;
  while Queue.length t.queue >= t.capacity do
    Condition.wait t.not_full t.lock
  done;
  Queue.push task t.queue;
  Condition.signal t.not_empty;
  Mutex.unlock t.lock

let pop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue do
    Condition.wait t.not_empty t.lock
  done;
  let task = Queue.pop t.queue in
  Condition.signal t.not_full;
  Mutex.unlock t.lock;
  task

let rec worker t =
  match pop t with
  | Stop -> ()
  | Run f ->
      f ();
      worker t

let create ?jobs () =
  let p_jobs =
    match jobs with
    | Some j -> max 1 j
    | None -> recommended_jobs ()
  in
  let t =
    {
      p_jobs;
      queue = Queue.create ();
      capacity = max 4 (2 * p_jobs);
      lock = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      stopping = false;
      domains = [];
    }
  in
  if p_jobs > 1 then
    t.domains <-
      List.init (p_jobs - 1) (fun i ->
          Domain.spawn (fun () ->
              Telemetry.Trace.register_lane (Printf.sprintf "worker-%d" (i + 1));
              worker t));
  t

let serial = create ~jobs:1 ()

let shutdown t =
  let ds =
    Mutex.lock t.lock;
    let ds = t.domains in
    t.domains <- [];
    t.stopping <- true;
    Mutex.unlock t.lock;
    ds
  in
  List.iter (fun _ -> push t Stop) ds;
  List.iter Domain.join ds

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(** One task's settled state. *)
type 'b settled = Value of 'b | Raised of exn

let map t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when t.p_jobs <= 1 -> List.map f xs
  | xs ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let results = Array.make n None in
      let remaining = ref n in
      let done_lock = Mutex.create () in
      let all_done = Condition.create () in
      let task i x () =
        let r = try Value (f x) with e -> Raised e in
        Mutex.lock done_lock;
        results.(i) <- Some r;
        decr remaining;
        if !remaining = 0 then Condition.signal all_done;
        Mutex.unlock done_lock
      in
      (* The submitter helps at the queue's tail once everything is
         enqueued, so a pool is never idle while it still has work. *)
      Array.iteri (fun i x -> push t (Run (task i x))) arr;
      let rec help () =
        let task =
          Mutex.lock t.lock;
          let task =
            if Queue.is_empty t.queue then None
            else
              match Queue.peek t.queue with
              | Stop -> None
              | Run _ -> (
                  match Queue.pop t.queue with
                  | Run f ->
                      Condition.signal t.not_full;
                      Some f
                  | Stop -> assert false)
          in
          Mutex.unlock t.lock;
          task
        in
        match task with
        | Some f ->
            f ();
            help ()
        | None -> ()
      in
      help ();
      Mutex.lock done_lock;
      while !remaining > 0 do
        Condition.wait all_done done_lock
      done;
      Mutex.unlock done_lock;
      let first_exn = ref None in
      Array.iter
        (function
          | Some (Raised e) when !first_exn = None -> first_exn := Some e
          | _ -> ())
        results;
      (match !first_exn with Some e -> raise e | None -> ());
      Array.to_list
        (Array.map
           (function Some (Value v) -> v | Some (Raised _) | None -> assert false)
           results)
