(** Domain-based worker pool over a bounded work queue.

    The queue holds closures; {!map} fans a task list out over the
    workers and reassembles results by input index, so callers see
    deterministic ordering no matter how the domains interleave.  The
    queue bound keeps a huge schedule space from materializing thousands
    of closures at once: submission blocks until a worker frees a slot. *)

type task = Run of (unit -> unit) | Stop

type t = {
  p_jobs : int;
  queue : task Queue.t;
  capacity : int;
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let recommended_jobs () = Domain.recommended_domain_count ()

let jobs t = t.p_jobs

let push t task =
  Mutex.lock t.lock;
  while Queue.length t.queue >= t.capacity do
    Condition.wait t.not_full t.lock
  done;
  Queue.push task t.queue;
  Condition.signal t.not_empty;
  Mutex.unlock t.lock

let pop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue do
    Condition.wait t.not_empty t.lock
  done;
  let task = Queue.pop t.queue in
  Condition.signal t.not_full;
  Mutex.unlock t.lock;
  task

let rec worker t =
  match pop t with
  | Stop -> ()
  | Run f ->
      f ();
      worker t

let create ?jobs () =
  let p_jobs =
    match jobs with
    | Some j -> max 1 j
    | None -> recommended_jobs ()
  in
  let t =
    {
      p_jobs;
      queue = Queue.create ();
      capacity = max 4 (2 * p_jobs);
      lock = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      stopping = false;
      domains = [];
    }
  in
  if p_jobs > 1 then
    t.domains <-
      List.init (p_jobs - 1) (fun i ->
          Domain.spawn (fun () ->
              Telemetry.Trace.register_lane (Printf.sprintf "worker-%d" (i + 1));
              worker t));
  t

let serial = create ~jobs:1 ()

let shutdown t =
  let ds =
    Mutex.lock t.lock;
    let ds = t.domains in
    t.domains <- [];
    t.stopping <- true;
    Mutex.unlock t.lock;
    ds
  in
  List.iter (fun _ -> push t Stop) ds;
  List.iter Domain.join ds

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(** One task's settled state. *)
type 'b settled = Value of 'b | Raised of exn

let map t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when t.p_jobs <= 1 -> List.map f xs
  | xs ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let results = Array.make n None in
      let remaining = ref n in
      let done_lock = Mutex.create () in
      let all_done = Condition.create () in
      let task i x () =
        let r = try Value (f x) with e -> Raised e in
        Mutex.lock done_lock;
        results.(i) <- Some r;
        decr remaining;
        if !remaining = 0 then Condition.signal all_done;
        Mutex.unlock done_lock
      in
      (* The submitter helps at the queue's tail once everything is
         enqueued, so a pool is never idle while it still has work. *)
      Array.iteri (fun i x -> push t (Run (task i x))) arr;
      let rec help () =
        let task =
          Mutex.lock t.lock;
          let task =
            if Queue.is_empty t.queue then None
            else
              match Queue.peek t.queue with
              | Stop -> None
              | Run _ -> (
                  match Queue.pop t.queue with
                  | Run f ->
                      Condition.signal t.not_full;
                      Some f
                  | Stop -> assert false)
          in
          Mutex.unlock t.lock;
          task
        in
        match task with
        | Some f ->
            f ();
            help ()
        | None -> ()
      in
      help ();
      Mutex.lock done_lock;
      while !remaining > 0 do
        Condition.wait all_done done_lock
      done;
      Mutex.unlock done_lock;
      let first_exn = ref None in
      Array.iter
        (function
          | Some (Raised e) when !first_exn = None -> first_exn := Some e
          | _ -> ())
        results;
      (match !first_exn with Some e -> raise e | None -> ());
      Array.to_list
        (Array.map
           (function Some (Value v) -> v | Some (Raised _) | None -> assert false)
           results)

(* ------------------------------------------------------------------ *)
(* Supervised execution                                                *)
(* ------------------------------------------------------------------ *)

exception Crash of string

exception Transient of string

exception Deadline_exceeded

type policy = {
  max_attempts : int;
  backoff_base : int;
  deadline : int option;
  seed : int;
}

let default_policy =
  { max_attempts = 3; backoff_base = 16; deadline = None; seed = 0 }

(* Exponential backoff with deterministic jitter: a pure function of
   (seed, attempt), so a replay with the same seed schedules the same
   waits.  Ticks, not wall time — supervision stays deterministic. *)
let backoff_ticks ~seed ~attempt ~base =
  let base = max base 1 in
  let jitter = Hashtbl.hash (seed, attempt) mod base in
  (base * (1 lsl min (max (attempt - 1) 0) 16)) + jitter

type ctx = { tick : unit -> unit; attempt : int }

type 'b outcome =
  | Done of { value : 'b; attempts : int }
  | Quarantined of { reason : string; attempts : int }

type sup_stats = {
  sup_retries : int;
  sup_restarts : int;
  sup_backoff_ticks : int;
  sup_quarantined : int;
}

let outcome_value = function
  | Done { value; _ } -> Some value
  | Quarantined _ -> None

(* Shared mutable counters for one map_supervised run.  The serial and
   parallel paths drive the same per-task decision tree, so outcomes
   and counters are identical regardless of the worker count. *)
type sup_state = {
  sup_policy : policy;
  sup_lock : Mutex.t;
  mutable st_retries : int;
  mutable st_restarts : int;
  mutable st_backoff : int;
  mutable st_quarantined : int;
}

let sup_ctx policy k =
  let ticks = ref 0 in
  {
    attempt = k;
    tick =
      (fun () ->
        incr ticks;
        match policy.deadline with
        | Some d when !ticks > d -> raise Deadline_exceeded
        | _ -> ());
  }

(* One attempt of task [idx].  The three fault classes:
   - [Transient]: retried in place (with deterministic backoff) by the
     same worker;
   - [Crash] / [Deadline_exceeded]: the worker is considered dead —
     [`Died] tells the caller to replace it and re-enqueue the task;
   - anything else: quarantined immediately, so a poisoned task never
     wedges the queue. *)
let run_attempt (s : sup_state) f x idx k settle =
  let p = s.sup_policy in
  let rec go k =
    match f (sup_ctx p k) x with
    | v ->
        settle idx (Done { value = v; attempts = k });
        `Ok
    | exception Transient msg ->
        if k >= p.max_attempts then begin
          settle idx (Quarantined { reason = "transient: " ^ msg; attempts = k });
          `Ok
        end
        else begin
          Mutex.lock s.sup_lock;
          s.st_retries <- s.st_retries + 1;
          s.st_backoff <-
            s.st_backoff
            + backoff_ticks ~seed:(p.seed + idx) ~attempt:k ~base:p.backoff_base;
          Mutex.unlock s.sup_lock;
          go (k + 1)
        end
    | exception Crash msg -> `Died (idx, k, "crash: " ^ msg)
    | exception Deadline_exceeded -> `Died (idx, k, "deadline exceeded")
    | exception e ->
        settle idx (Quarantined { reason = Printexc.to_string e; attempts = k });
        `Ok
  in
  go k

(* What the supervisor does with a death notice: count the restart and
   either re-enqueue the task (attempts left) or quarantine it.
   Returns the re-enqueued attempt number, if any. *)
let handle_incident (s : sup_state) settle (idx, k, reason) =
  let p = s.sup_policy in
  Mutex.lock s.sup_lock;
  s.st_restarts <- s.st_restarts + 1;
  let requeue = k < p.max_attempts in
  if requeue then s.st_retries <- s.st_retries + 1;
  Mutex.unlock s.sup_lock;
  if requeue then Some (idx, k + 1)
  else begin
    settle idx (Quarantined { reason; attempts = k });
    None
  end

let supervised_run t policy f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let s =
    {
      sup_policy = policy;
      sup_lock = Mutex.create ();
      st_retries = 0;
      st_restarts = 0;
      st_backoff = 0;
      st_quarantined = 0;
    }
  in
  let results = Array.make n None in
  let stats () =
    {
      sup_retries = s.st_retries;
      sup_restarts = s.st_restarts;
      sup_backoff_ticks = s.st_backoff;
      sup_quarantined = s.st_quarantined;
    }
  in
  let finish () =
    ( Array.to_list
        (Array.map
           (function Some o -> o | None -> assert false)
           results),
      stats () )
  in
  if n = 0 then ([], stats ())
  else if t.p_jobs <= 1 || n = 1 then begin
    (* serial reference path: the "worker" is the caller; a death
       notice is handled inline, so outcomes and counters match the
       parallel path exactly *)
    let settle idx o =
      (match o with
      | Quarantined _ -> s.st_quarantined <- s.st_quarantined + 1
      | Done _ -> ());
      results.(idx) <- Some o
    in
    Array.iteri
      (fun idx x ->
        let rec drive k =
          match run_attempt s f x idx k settle with
          | `Ok -> ()
          | `Died incident -> (
              match handle_incident s settle incident with
              | Some (_, k') -> drive k'
              | None -> ())
        in
        drive 1)
      arr;
    finish ()
  end
  else begin
    (* Dedicated worker domains with a real supervisor: a crashed or
       deadline-blown worker domain exits and is replaced by a fresh
       spawn; its task is re-enqueued up to the attempt cap.  Domains
       are per-call (supervision is the chaos path, not the hot path),
       so a dying worker cannot poison the shared pool queue. *)
    let lock = Mutex.create () in
    let cond = Condition.create () in
    let queue = Queue.create () in
    let incidents = Queue.create () in
    let remaining = ref n in
    let settle_locked idx o =
      (match o with
      | Quarantined _ -> s.st_quarantined <- s.st_quarantined + 1
      | Done _ -> ());
      results.(idx) <- Some o;
      decr remaining;
      Condition.broadcast cond
    in
    let settle idx o =
      Mutex.lock lock;
      settle_locked idx o;
      Mutex.unlock lock
    in
    Array.iteri (fun idx _ -> Queue.push (idx, 1) queue) arr;
    let rec worker () =
      let job =
        Mutex.lock lock;
        while Queue.is_empty queue && !remaining > 0 do
          Condition.wait cond lock
        done;
        let job =
          if Queue.is_empty queue then None else Some (Queue.pop queue)
        in
        Mutex.unlock lock;
        job
      in
      match job with
      | None -> ()
      | Some (idx, k) -> (
          match run_attempt s f arr.(idx) idx k settle with
          | `Ok -> worker ()
          | `Died incident ->
              (* register the death and exit the domain cleanly: the
                 supervisor joins the corpse and spawns a replacement *)
              Mutex.lock lock;
              Queue.push incident incidents;
              Condition.broadcast cond;
              Mutex.unlock lock)
    in
    let workers = max 1 (min (t.p_jobs - 1) n) in
    let doms = ref (List.init workers (fun _ -> Domain.spawn worker)) in
    let rec supervise () =
      Mutex.lock lock;
      while Queue.is_empty incidents && !remaining > 0 do
        Condition.wait cond lock
      done;
      if Queue.is_empty incidents then Mutex.unlock lock
      else begin
        let incident = Queue.pop incidents in
        (match handle_incident s settle_locked incident with
        | Some job -> Queue.push job queue
        | None -> ());
        Condition.broadcast cond;
        Mutex.unlock lock;
        (* replace the dead worker *)
        doms := Domain.spawn worker :: !doms;
        supervise ()
      end
    in
    supervise ();
    List.iter Domain.join !doms;
    finish ()
  end

(* Supervision observability: anomalies (retries past the first attempt,
   quarantines) are recorded after every outcome settles, from the
   submitting thread in input order with the input index as the
   timestamp, so dump contents are identical on the serial and parallel
   paths. *)
let map_supervised t ?(policy = default_policy) ?recorder f xs =
  let outcomes, stats = supervised_run t policy f xs in
  (match recorder with
  | None -> ()
  | Some r ->
      List.iteri
        (fun idx o ->
          match o with
          | Done { attempts; _ } when attempts > 1 ->
              Telemetry.Flight_recorder.record r ~ts:idx "pool.retry"
                [
                  ("index", Telemetry.Json.Int idx);
                  ("attempts", Telemetry.Json.Int attempts);
                ]
          | Quarantined { reason; attempts } ->
              Telemetry.Flight_recorder.record r ~ts:idx "pool.quarantine"
                [
                  ("index", Telemetry.Json.Int idx);
                  ("attempts", Telemetry.Json.Int attempts);
                  ("reason", Telemetry.Json.Str reason);
                ]
          | Done _ -> ())
        outcomes);
  (outcomes, stats)
