(** A content-addressed, single-flight artifact cache.

    Keys are opaque strings (callers address artifacts by content, e.g. a
    source digest plus every build input that affects the result); values
    are whatever artifact the builder produces.  The cache memoizes
    across a whole process and is safe to use from several domains at
    once: concurrent requests for the same key run the builder exactly
    once, and every requester gets the physically-equal artifact.

    Hit/miss/eviction counters are maintained for observability — the
    bench prints them, and the harness asserts hit rates on them. *)

type 'v t

type stats = {
  hits : int;
  misses : int;
      (** builder invocations that settled an artifact — a failed build
          counts nothing, so this agrees with accounting layers above
          that count settled builds (e.g. the registry's
          [build/cache/misses]) *)
  evictions : int;
  corruptions : int;  (** fingerprint mismatches detected on hit *)
  entries : int;  (** artifacts currently resident *)
}

val create : ?capacity:int -> ?fingerprint:('v -> string) -> unit -> 'v t
(** [capacity] bounds resident artifacts; the least-recently-used entry
    is evicted on overflow.  Default: unbounded.

    [fingerprint] enables artifact verification: the digest is recorded
    when an artifact is inserted and re-checked on every hit.  A
    mismatch counts as a corruption, evicts the entry, and the request
    degrades to an ordinary single-flight rebuild — a corrupted
    artifact is never served.  The function must be pure and cheap (it
    runs under the cache lock). *)

val find_or_build : 'v t -> string -> (unit -> 'v) -> 'v
(** [find_or_build t key build] returns the cached artifact for [key],
    running [build] (outside the cache lock) on a miss.  A concurrent
    request for a key that is being built waits for the in-flight build
    and counts as a hit.  If [build] raises, the slot is released, every
    waiter fails over to building, and the exception propagates. *)

val find_or_build_outcome : 'v t -> string -> (unit -> 'v) -> 'v * bool
(** Like {!find_or_build}, but also tells the caller how the lookup
    settled: [true] for a hit (including waiting out an in-flight
    build), [false] when this call ran the builder.  This is what lets
    callers maintain their own per-session counters on top of the
    cache's process-wide ones. *)

val mem : 'v t -> string -> bool
(** The key holds a finished artifact (does not touch the counters). *)

val corrupt : 'v t -> string -> ('v -> 'v) -> bool
(** Chaos hook: replace the finished artifact under the key with the
    mutated value {e without} refreshing its recorded fingerprint —
    what an artifact rotting at rest looks like.  Returns [false] when
    the key holds no finished artifact.  Only observable when the cache
    has a [fingerprint] function (otherwise the mutated value is served
    as-is, exactly like the unverified cache it is). *)

val clear : 'v t -> unit
(** Drop all finished artifacts (counters are kept; not counted as
    evictions). *)

val stats : 'v t -> stats

val reset_stats : 'v t -> unit

val hit_rate : stats -> float
(** Hits over lookups, in [0, 1]; 0 when nothing was looked up. *)
