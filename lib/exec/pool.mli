(** A Domain-based worker pool with a bounded work queue.

    The pool exists so that the harness's embarrassingly parallel search
    problems — building the config x machine matrix, exploring a
    single-point GC-schedule space, regenerating table rows — can use
    every core while keeping reports deterministic: {!map} always returns
    results in input order, regardless of which domain finished first.

    Tasks must not print (interleaved output from worker domains is not
    deterministic); compute values and render them from the submitting
    thread.  [jobs <= 1] means "no domains at all": every task runs
    inline on the caller, which is the reference serial behaviour that
    parallel runs are diffed against. *)

type t

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** Spawn a pool of [jobs - 1] worker domains (the submitting thread is
    the remaining worker at the queue's tail: it blocks in {!map} anyway).
    [jobs] defaults to {!recommended_jobs}; [jobs <= 1] spawns nothing. *)

val jobs : t -> int

val serial : t
(** The jobs=1 pool: {!map} on it is [List.map].  Shutting it down is a
    no-op, so it can be used as a default everywhere. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel map with deterministic, input-ordered results.  If any task
    raises, the exception of the smallest input index is re-raised after
    all tasks have settled.  Not reentrant: do not call {!map} from
    inside a task. *)

val shutdown : t -> unit
(** Drain the queue and join the worker domains.  Idempotent. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exceptions). *)

(** {2 Supervised execution}

    {!map_supervised} is the fault-tolerant sibling of {!map}: tasks
    carry per-attempt deadlines on a deterministic tick clock, transient
    failures are retried in place with deterministic backoff, and a
    crashed or deadline-blown worker domain is really replaced — the
    supervisor joins the dead domain, spawns a fresh one, and re-enqueues
    the task up to an attempt cap, after which the task is quarantined as
    a structured outcome instead of poisoning the queue.  Outcomes and
    counters are identical on the serial ([jobs <= 1]) and parallel
    paths, so chaos reports diff cleanly against serial references. *)

exception Crash of string
(** A worker-killing fault (the chaos injector raises this): the worker
    domain running the task exits and is replaced. *)

exception Transient of string
(** A retryable failure: the same worker re-runs the task after a
    deterministic backoff, up to the attempt cap. *)

exception Deadline_exceeded
(** Raised by [ctx.tick] when an attempt exhausts its tick budget;
    treated like a crash (worker replaced, task re-enqueued). *)

type policy = {
  max_attempts : int;  (** total attempts per task before quarantine *)
  backoff_base : int;  (** base ticks for exponential backoff *)
  deadline : int option;  (** per-attempt tick budget; [None] = none *)
  seed : int;  (** jitter seed, for reproducible backoff schedules *)
}

val default_policy : policy
(** 3 attempts, base-16 backoff, no deadline, seed 0. *)

val backoff_ticks : seed:int -> attempt:int -> base:int -> int
(** Deterministic exponential backoff with jitter: a pure function of
    its arguments, so a fixed seed replays the same schedule. *)

type ctx = { tick : unit -> unit; attempt : int }
(** What a supervised task sees: [tick] advances the deterministic
    clock (and raises {!Deadline_exceeded} past the budget); [attempt]
    is 1-based. *)

type 'b outcome =
  | Done of { value : 'b; attempts : int }
  | Quarantined of { reason : string; attempts : int }

val outcome_value : 'b outcome -> 'b option

type sup_stats = {
  sup_retries : int;  (** re-executions past each task's first attempt *)
  sup_restarts : int;  (** worker domains replaced *)
  sup_backoff_ticks : int;  (** total backoff charged, in ticks *)
  sup_quarantined : int;
}

val map_supervised :
  t ->
  ?policy:policy ->
  ?recorder:Telemetry.Flight_recorder.t ->
  (ctx -> 'a -> 'b) ->
  'a list ->
  'b outcome list * sup_stats
(** Supervised parallel map with deterministic, input-ordered outcomes.
    Workers are dedicated domains (the pool contributes its [jobs]
    width); with no faults, the outcomes are [Done] with [attempts = 1]
    and the values equal [map].  Tasks that keep failing transiently,
    crashing, or blowing deadlines settle as [Quarantined] after
    [policy.max_attempts] attempts; any other exception quarantines
    immediately.

    [recorder], when given, receives one [pool.retry] event per task
    that needed more than one attempt and one [pool.quarantine] event
    per quarantined task, recorded after every outcome settles, in
    input order with the input index as the timestamp — so dump
    contents are identical on the serial and parallel paths. *)
