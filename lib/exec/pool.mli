(** A Domain-based worker pool with a bounded work queue.

    The pool exists so that the harness's embarrassingly parallel search
    problems — building the config x machine matrix, exploring a
    single-point GC-schedule space, regenerating table rows — can use
    every core while keeping reports deterministic: {!map} always returns
    results in input order, regardless of which domain finished first.

    Tasks must not print (interleaved output from worker domains is not
    deterministic); compute values and render them from the submitting
    thread.  [jobs <= 1] means "no domains at all": every task runs
    inline on the caller, which is the reference serial behaviour that
    parallel runs are diffed against. *)

type t

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** Spawn a pool of [jobs - 1] worker domains (the submitting thread is
    the remaining worker at the queue's tail: it blocks in {!map} anyway).
    [jobs] defaults to {!recommended_jobs}; [jobs <= 1] spawns nothing. *)

val jobs : t -> int

val serial : t
(** The jobs=1 pool: {!map} on it is [List.map].  Shutting it down is a
    no-op, so it can be used as a default everywhere. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel map with deterministic, input-ordered results.  If any task
    raises, the exception of the smallest input index is re-raised after
    all tasks have settled.  Not reentrant: do not call {!map} from
    inside a task. *)

val shutdown : t -> unit
(** Drain the queue and join the worker domains.  Idempotent. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exceptions). *)
