(** The unified request record.  See the interface for the contract. *)

type t = {
  label : string;
  source : string;
  config : Build.config;
  machine : Machine.Machdesc.t;
  analysis : Gcsafe.Mode.analysis;
  gc_mode : Gcheap.Heap.gc_mode;
  loop_heuristic : bool;
  use_cache : bool;
  schedule : Machine.Schedule.t;
  check_integrity : bool;
  final_collect : bool;
  gc_threshold : int option;
  gc_pause_budget : int option;
  nursery_pages : int option;
  max_instrs : int option;
  max_heap : int option;
  heap_limit : int;
  oom_policy : Gcheap.Heap.oom_policy;
  alloc_failpoints : Gcheap.Failpoint.t;
  trace_id : int;
}

let make ?(label = "") ?(config = Build.Safe)
    ?(machine = Machine.Machdesc.sparc10) ?analysis ?gc_mode ?loop_heuristic
    ?use_cache ?(schedule = Machine.Schedule.Auto) ?(check_integrity = false)
    ?(final_collect = false) ?gc_threshold ?gc_pause_budget ?nursery_pages
    ?max_instrs
    ?max_heap ?(heap_limit = 0) ?(oom_policy = Gcheap.Heap.Collect_expand)
    ?(alloc_failpoints = Gcheap.Failpoint.Never) ?(trace_id = 0) source =
  let d = Build.for_machine machine in
  {
    label;
    source;
    config;
    machine;
    analysis = Option.value ~default:d.Build.analysis analysis;
    gc_mode = Option.value ~default:d.Build.gc_mode gc_mode;
    loop_heuristic = Option.value ~default:d.Build.loop_heuristic loop_heuristic;
    use_cache = Option.value ~default:d.Build.use_cache use_cache;
    schedule;
    check_integrity;
    final_collect;
    gc_threshold;
    gc_pause_budget;
    nursery_pages;
    max_instrs;
    max_heap;
    heap_limit;
    oom_policy;
    alloc_failpoints;
    trace_id;
  }

let build_options (r : t) : Build.options =
  {
    Build.nregs = r.machine.Machine.Machdesc.md_regs;
    Build.loop_heuristic = r.loop_heuristic;
    Build.use_cache = r.use_cache;
    Build.analysis = r.analysis;
    Build.gc_mode = r.gc_mode;
  }

let cache_key r = Build.cache_key (build_options r) r.config r.source

let matrix_key r =
  Build.artifact_key (build_options r) r.config
  ^ ":"
  ^ Digest.to_hex (Digest.string r.source)

(* the harness defaults ([A_flow], stop-the-world collection) stay
   untagged; the variants announce themselves *)
let describe r =
  let tag =
    match r.analysis with
    | Gcsafe.Mode.A_flow -> ""
    | Gcsafe.Mode.A_none -> " [analysis=none]"
  in
  let gtag =
    match r.gc_mode with
    | Gcheap.Heap.Stw -> ""
    | Gcheap.Heap.Gen -> " [gen]"
    | Gcheap.Heap.Inc -> " [inc]"
  in
  Printf.sprintf "%s @ %s%s%s"
    (Build.config_name r.config)
    r.machine.Machine.Machdesc.md_name tag gtag

(* ------------------------------------------------------------------ *)
(* Matrices                                                            *)
(* ------------------------------------------------------------------ *)

type matrix = {
  m_configs : Build.config list;
  m_machines : Machine.Machdesc.t list;
  m_analyses : Gcsafe.Mode.analysis list;
  m_gc_modes : Gcheap.Heap.gc_mode list;
  m_check_integrity : bool;
  m_final_collect : bool;
  m_max_instrs : int option;
  m_max_heap : int option;
  m_nursery_pages : int option;
}

let default_matrix =
  {
    m_configs = Build.all_configs;
    m_machines =
      [
        Machine.Machdesc.sparc2;
        Machine.Machdesc.sparc10;
        Machine.Machdesc.pentium90;
      ];
    m_analyses = [ Gcsafe.Mode.A_flow ];
    m_gc_modes = [ Gcheap.Heap.Stw ];
    m_check_integrity = true;
    m_final_collect = true;
    m_max_instrs = None;
    m_max_heap = None;
    m_nursery_pages = None;
  }

let expand (m : matrix) (source : string) : t list =
  let variants config =
    if Build.preprocessed config then List.sort_uniq compare m.m_analyses
    else [ Build.default.Build.analysis ]
  in
  let gc_modes = List.sort_uniq compare m.m_gc_modes in
  List.concat_map
    (fun machine ->
      List.concat_map
        (fun config ->
          List.concat_map
            (fun analysis ->
              List.map
                (fun gc_mode ->
                  make ~config ~machine ~analysis ~gc_mode
                    ~check_integrity:m.m_check_integrity
                    ~final_collect:m.m_final_collect
                    ?max_instrs:m.m_max_instrs ?max_heap:m.m_max_heap
                    ?nursery_pages:m.m_nursery_pages source)
                gc_modes)
            (variants config))
        m.m_configs)
    m.m_machines

(* ------------------------------------------------------------------ *)
(* Wire format                                                         *)
(* ------------------------------------------------------------------ *)

module Json = Telemetry.Json

let to_json (r : t) : Json.t =
  let base =
    [
      ("label", Json.Str r.label);
      ("source", Json.Str r.source);
      ("config", Json.Str (Build.config_id r.config));
      ("machine", Json.Str r.machine.Machine.Machdesc.md_name);
      ("analysis", Json.Str (Gcsafe.Mode.analysis_to_string r.analysis));
      ("gc_mode", Json.Str (Gcheap.Heap.gc_mode_name r.gc_mode));
      ("loop_heuristic", Json.Bool r.loop_heuristic);
      ("use_cache", Json.Bool r.use_cache);
      ("schedule", Json.Str (Machine.Schedule.to_string r.schedule));
      ("check_integrity", Json.Bool r.check_integrity);
      ("final_collect", Json.Bool r.final_collect);
      ("heap_limit", Json.Int r.heap_limit);
      ("oom_policy", Json.Str (Gcheap.Heap.oom_policy_name r.oom_policy));
      ("alloc_failpoints", Json.Str (Gcheap.Failpoint.to_string r.alloc_failpoints));
    ]
  in
  let opt name = function None -> [] | Some n -> [ (name, Json.Int n) ] in
  Json.Obj
    (base
    @ opt "gc_threshold" r.gc_threshold
    @ opt "gc_pause_budget" r.gc_pause_budget
    @ opt "nursery_pages" r.nursery_pages
    @ opt "max_instrs" r.max_instrs
    @ opt "max_heap" r.max_heap
    @ opt "trace_id" (if r.trace_id = 0 then None else Some r.trace_id))

let of_json (doc : Json.t) : (t, string) result =
  let ( let* ) = Result.bind in
  let str name =
    match Json.member name doc with
    | Some (Json.Str s) -> Ok (Some s)
    | Some _ -> Error (Printf.sprintf "field %S must be a string" name)
    | None -> Ok None
  in
  let boolean name ~default =
    match Json.member name doc with
    | Some (Json.Bool b) -> Ok b
    | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)
    | None -> Ok default
  in
  let int_opt name =
    match Json.member name doc with
    | Some (Json.Int n) -> Ok (Some n)
    | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)
    | None -> Ok None
  in
  let parse name conv = function
    | None -> Ok None
    | Some s -> (
        match conv s with
        | Some v -> Ok (Some v)
        | None -> Error (Printf.sprintf "field %S: unknown value %S" name s))
  in
  let* source =
    match Json.member "source" doc with
    | Some (Json.Str s) -> Ok s
    | Some _ -> Error "field \"source\" must be a string"
    | None -> Error "missing required field \"source\""
  in
  let* label = str "label" in
  let* config = Result.bind (str "config") (parse "config" Build.config_of_string) in
  let* machine = Result.bind (str "machine") (parse "machine" Machine.Machdesc.by_name) in
  let* analysis =
    Result.bind (str "analysis") (parse "analysis" Gcsafe.Mode.analysis_of_string)
  in
  let* gc_mode =
    Result.bind (str "gc_mode") (parse "gc_mode" Gcheap.Heap.gc_mode_of_string)
  in
  let* schedule =
    Result.bind (str "schedule") (parse "schedule" Machine.Schedule.of_string)
  in
  let* oom_policy =
    Result.bind (str "oom_policy") (parse "oom_policy" Gcheap.Heap.oom_policy_of_string)
  in
  let* alloc_failpoints =
    Result.bind (str "alloc_failpoints")
      (parse "alloc_failpoints" Gcheap.Failpoint.of_string)
  in
  let* loop_heuristic = boolean "loop_heuristic" ~default:false in
  let* use_cache = boolean "use_cache" ~default:true in
  let* check_integrity = boolean "check_integrity" ~default:false in
  let* final_collect = boolean "final_collect" ~default:false in
  let* gc_threshold = int_opt "gc_threshold" in
  let* gc_pause_budget = int_opt "gc_pause_budget" in
  let* nursery_pages = int_opt "nursery_pages" in
  let* max_instrs = int_opt "max_instrs" in
  let* max_heap = int_opt "max_heap" in
  let* heap_limit = int_opt "heap_limit" in
  let* trace_id = int_opt "trace_id" in
  let r =
    make ?label ?config ?machine ?analysis ?gc_mode ~loop_heuristic ~use_cache
      ?schedule ~check_integrity ~final_collect ?gc_threshold ?gc_pause_budget
      ?nursery_pages ?max_instrs ?max_heap ?heap_limit ?oom_policy ?alloc_failpoints ?trace_id
      source
  in
  Ok r
