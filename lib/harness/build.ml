(** Build configurations: source -> annotated AST -> IR -> optimized,
    register-allocated machine code.

    These mirror the paper's measured builds:
    - [Base]: "-O", the unpreprocessed optimized baseline;
    - [Safe]: "-O, safe", preprocessed for GC-safety then optimized;
    - [Safe_peephole]: [Safe] plus the assembly-level postprocessor;
    - [Debug]: "-g", fully debuggable code, unpreprocessed ("and hence
      probably guaranteed safe");
    - [Debug_checked]: "-g, checked", preprocessed to insert pointer
      arithmetic checks and compiled debuggable. *)

type config = Base | Safe | Safe_peephole | Debug | Debug_checked

let config_name = function
  | Base -> "-O"
  | Safe -> "-O, safe"
  | Safe_peephole -> "-O, safe+peep"
  | Debug -> "-g"
  | Debug_checked -> "-g, checked"

let all_configs = [ Base; Safe; Safe_peephole; Debug; Debug_checked ]

(* the CLI spellings; [config_name] renders the paper's names *)
let config_of_string = function
  | "base" -> Some Base
  | "safe" -> Some Safe
  | "safe-peep" -> Some Safe_peephole
  | "debug" | "g" -> Some Debug
  | "checked" -> Some Debug_checked
  | _ -> None

let config_id = function
  | Base -> "base"
  | Safe -> "safe"
  | Safe_peephole -> "safe-peep"
  | Debug -> "debug"
  | Debug_checked -> "checked"

let preprocessed = function
  | Safe | Safe_peephole | Debug_checked -> true
  | Base | Debug -> false

type built = {
  b_config : config;
  b_ir : Ir.Instr.program;
  b_keep_lives : int;  (** annotations inserted (0 for unpreprocessed) *)
  b_size : int;  (** static size in instructions *)
}

(** Build options: everything besides the configuration and the source
    that affects the produced code.  One record, so call sites stay
    stable as inputs are added and the artifact cache can key on the
    whole record. *)
type options = {
  nregs : int;
  loop_heuristic : bool;
  use_cache : bool;
  analysis : Gcsafe.Mode.analysis;
  gc_mode : Gcheap.Heap.gc_mode;
}

let default =
  {
    nregs = 32;
    loop_heuristic = false;
    use_cache = true;
    analysis = Gcsafe.Mode.A_flow;
    gc_mode = Gcheap.Heap.Stw;
  }

let for_machine (m : Machine.Machdesc.t) =
  { default with nregs = m.Machine.Machdesc.md_regs }

(** Annotate (when the configuration calls for it), compile, optimize and
    register-allocate [source] for [options.nregs] machine registers.

    [loop_heuristic] defaults to off, matching the paper's implementation
    ("Only optimizations (1) and (2) from above are implemented"); the
    ablation bench measures what turning it on does. *)
let compile_uncached (options : options) (config : config) (source : string) :
    built =
  let loop_heuristic = options.loop_heuristic and nregs = options.nregs in
  let ast = Csyntax.Parser.parse_program source in
  let annotated, keep_lives =
    match config with
    | Base | Debug ->
        ignore (Csyntax.Typecheck.check_program ast);
        (ast, 0)
    | Safe | Safe_peephole ->
        let opts =
          {
            (Gcsafe.Mode.default Gcsafe.Mode.Safe) with
            Gcsafe.Mode.analysis = options.analysis;
          }
        in
        let r = Gcsafe.Annotate.run ~opts ast in
        let p =
          if loop_heuristic then Gcsafe.Loop_heuristic.apply r.Gcsafe.Annotate.program
          else r.Gcsafe.Annotate.program
        in
        (p, r.Gcsafe.Annotate.keep_live_count)
    | Debug_checked ->
        let opts =
          {
            (Gcsafe.Mode.default Gcsafe.Mode.Checked) with
            Gcsafe.Mode.analysis = options.analysis;
          }
        in
        let r = Gcsafe.Annotate.run ~opts ast in
        (r.Gcsafe.Annotate.program, r.Gcsafe.Annotate.keep_live_count)
  in
  let cmode =
    match config with
    | Base | Safe | Safe_peephole -> Ir.Compile.opt_mode
    | Debug | Debug_checked -> Ir.Compile.debug_mode
  in
  let irp = Ir.Compile.compile_program ~mode:cmode annotated in
  let ocfg =
    {
      Opt.Pipeline.default with
      Opt.Pipeline.optimize =
        (match config with
        | Base | Safe | Safe_peephole -> true
        | Debug | Debug_checked -> false);
      Opt.Pipeline.nregs = nregs;
    }
  in
  ignore (Opt.Pipeline.run_program ocfg irp);
  (match config with
  | Safe_peephole -> ignore (Peephole.Postprocess.run irp)
  | Base | Safe | Debug | Debug_checked -> ());
  {
    b_config = config;
    b_ir = irp;
    b_keep_lives = keep_lives;
    b_size = Ir.Instr.program_size irp;
  }

(* ------------------------------------------------------------------ *)
(* The artifact cache                                                  *)
(* ------------------------------------------------------------------ *)

(* Process-wide and content-addressed: identical (source, config,
   options) triples compile once per process no matter how many
   consumers — tables, differ, stress, bench — ask, serially or from
   worker domains.

   Artifacts are fingerprinted by a structural digest: the IR is only
   mutated during compilation, never by the VM, so the digest is stable
   for a healthy artifact and any in-place corruption is caught on the
   next hit and rebuilt instead of served. *)
let fingerprint (b : built) : string =
  Digest.to_hex
    (Digest.string (Marshal.to_string (b.b_ir, b.b_keep_lives, b.b_size) []))

let cache : built Exec.Cache.t = Exec.Cache.create ~fingerprint ()

let enabled = Atomic.make true

let set_cache_enabled b = Atomic.set enabled b

let cache_enabled () = Atomic.get enabled

let cache_stats () = Exec.Cache.stats cache

let reset_cache () =
  Exec.Cache.clear cache;
  Exec.Cache.reset_stats cache

(* The config name and the option fields are ':'-separated in front of a
   fixed-width source digest, and none of them can contain ':', so the
   key is injective in every input that affects the produced code.
   [use_cache] steers the lookup, not the artifact, and is excluded.

   [artifact_key] is the part that actually shapes the produced code —
   the differ dedups builds on it ([Request.matrix_key] appends the
   source digest).  [cache_key] adds the gc mode: it does not change the
   code, but it is part of the record identity the harness threads
   around (a cached artifact answers for the exact options it was
   requested under). *)
let artifact_key (options : options) (config : config) : string =
  Printf.sprintf "%s:%d:%b:%s" (config_name config) options.nregs
    options.loop_heuristic
    (Gcsafe.Mode.analysis_to_string options.analysis)

let cache_key (options : options) (config : config) (source : string) : string
    =
  Printf.sprintf "%s:%s:%s"
    (artifact_key options config)
    (Gcheap.Heap.gc_mode_name options.gc_mode)
    (Digest.to_hex (Digest.string source))

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

(* A session is a baseline snapshot of the process-wide counters; its
   stats are the componentwise delta, so back-to-back consumers (bench
   sections, CLI invocations) observe only their own traffic. *)
type session = { s_base : Exec.Cache.stats }

let new_session () = { s_base = Exec.Cache.stats cache }

let session_stats (s : session) : Exec.Cache.stats =
  let now = Exec.Cache.stats cache in
  {
    Exec.Cache.hits = now.Exec.Cache.hits - s.s_base.Exec.Cache.hits;
    misses = now.Exec.Cache.misses - s.s_base.Exec.Cache.misses;
    evictions = now.Exec.Cache.evictions - s.s_base.Exec.Cache.evictions;
    corruptions = now.Exec.Cache.corruptions - s.s_base.Exec.Cache.corruptions;
    entries = now.Exec.Cache.entries;
  }

(* Chaos hook: rot the cached artifact for (options, config, source) in
   place, without refreshing its fingerprint.  The next [compile] hit
   must detect the mismatch and rebuild rather than serve it. *)
let corrupt_cached ?(options = default) (config : config) (source : string) :
    bool =
  Exec.Cache.corrupt cache
    (cache_key options config source)
    (fun b -> { b with b_size = b.b_size + 1 })

let compile ?telemetry ?(options = default) (config : config)
    (source : string) : built =
  let m = Telemetry.Sink.metrics telemetry in
  let m = Telemetry.Metrics.scope m "build" in
  let do_compile () =
    Telemetry.Sink.with_span telemetry
      ~args:[ ("config", Telemetry.Json.Str (config_name config)) ]
      "build.compile"
      (fun () -> compile_uncached options config source)
  in
  if options.use_cache && Atomic.get enabled then begin
    let built, hit =
      Exec.Cache.find_or_build_outcome cache
        (cache_key options config source)
        do_compile
    in
    Telemetry.Metrics.incr
      (Telemetry.Metrics.counter m
         (if hit then "cache/hits" else "cache/misses"));
    built
  end
  else begin
    Telemetry.Metrics.incr (Telemetry.Metrics.counter m "cache/bypass");
    do_compile ()
  end
