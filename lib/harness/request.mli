(** The unified request record: one value naming everything a single
    compile+run needs.

    Before this module, every consumer — {!Measure.exec}'s
    predecessors, {!Differ.observe}, the stress plans, the CLI
    — re-spelled the same ~8 optional arguments ([?gc_mode],
    [?heap_limit], [?oom_policy], [?alloc_failpoints], ...).  A request
    collapses them into a first-class value: the same record a
    [gcsafed] wire request deserializes into, the record the differ's
    subjects carry, and the source of the canonical cache and matrix
    keys.  Smart constructors mirror {!Build.default} /
    {!Build.for_machine}. *)

type t = {
  label : string;  (** free-form scenario tag (reports group on it) *)
  source : string;  (** the C program text *)
  config : Build.config;
  machine : Machine.Machdesc.t;
  analysis : Gcsafe.Mode.analysis;
  gc_mode : Gcheap.Heap.gc_mode;
  loop_heuristic : bool;
  use_cache : bool;
  schedule : Machine.Schedule.t;
  check_integrity : bool;
  final_collect : bool;
  gc_threshold : int option;
  gc_pause_budget : int option;
      (** incremental-marking pause budget in words of collector work
          per increment; [None] keeps the VM default.  The service's
          SLO layer also reads this as the per-request pause SLO. *)
  nursery_pages : int option;
      (** bump-allocated nursery budget in pages for the generational
          and incremental modes; [Some 0] disables the nursery (legacy
          shared-page young allocation), [None] keeps the VM default.
          Ignored — like the rest of the generational machinery — in
          stop-the-world mode. *)
  max_instrs : int option;
  max_heap : int option;
  heap_limit : int;  (** hard arena ceiling in words; 0 = unlimited *)
  oom_policy : Gcheap.Heap.oom_policy;
  alloc_failpoints : Gcheap.Failpoint.t;
  trace_id : int;
      (** request-scoped trace id for flight-recorder / phase-span
          correlation; 0 (the default) means "unassigned" — the service
          stamps a fresh one at submission.  Deliberately excluded from
          {!cache_key} and {!matrix_key}, which derive from the build
          options, config and source only, so tracing never perturbs
          caching or artifact sharing. *)
}

val make :
  ?label:string ->
  ?config:Build.config ->
  ?machine:Machine.Machdesc.t ->
  ?analysis:Gcsafe.Mode.analysis ->
  ?gc_mode:Gcheap.Heap.gc_mode ->
  ?loop_heuristic:bool ->
  ?use_cache:bool ->
  ?schedule:Machine.Schedule.t ->
  ?check_integrity:bool ->
  ?final_collect:bool ->
  ?gc_threshold:int ->
  ?gc_pause_budget:int ->
  ?nursery_pages:int ->
  ?max_instrs:int ->
  ?max_heap:int ->
  ?heap_limit:int ->
  ?oom_policy:Gcheap.Heap.oom_policy ->
  ?alloc_failpoints:Gcheap.Failpoint.t ->
  ?trace_id:int ->
  string ->
  t
(** [make source] with the harness defaults: [Safe] on sparc10,
    {!Build.for_machine} options ([A_flow], stop-the-world, cache on),
    [Auto] schedule, no sanitizing, no ceilings, no injected faults.
    Overrides are record updates from here on — the call-site dialect
    of optional arguments stops at this constructor. *)

val build_options : t -> Build.options
(** The {!Build.options} this request compiles under (register count
    from [machine], analysis/gc mode/loop heuristic/cache use from the
    request). *)

val cache_key : t -> string
(** The canonical content address of this request's build —
    {!Build.cache_key} over {!build_options}; what {!Exec.Cache} keys
    on. *)

val matrix_key : t -> string
(** The canonical build-dedup key: {!Build.artifact_key} (excluding the
    gc mode, a run-time property) plus the source digest.  Two requests
    with equal matrix keys share one built artifact in a differ
    matrix. *)

val describe : t -> string
(** ["config @ machine"], tagged [" [analysis=none]"] for
    paper-verbatim requests, [" [gen]"] for generational and
    [" [inc]"] for incremental ones — the differ's subject-name
    rendering. *)

(** {1 Matrices}

    The cross product the differ and the stress plans iterate: configs
    x machines x analyses x gc modes over one source.  Replaces the
    four parallel lists those plans used to re-spell. *)

type matrix = {
  m_configs : Build.config list;
  m_machines : Machine.Machdesc.t list;
  m_analyses : Gcsafe.Mode.analysis list;
      (** variants of the preprocessed configurations; unpreprocessed
          configs get a single subject regardless *)
  m_gc_modes : Gcheap.Heap.gc_mode list;
  m_check_integrity : bool;
  m_final_collect : bool;
  m_max_instrs : int option;
  m_max_heap : int option;
  m_nursery_pages : int option;
      (** nursery size applied to every expanded request; [None] keeps
          the VM default on each subject *)
}

val default_matrix : matrix
(** All five configurations on the paper's three machines, [A_flow],
    stop-the-world, sanitizing on (differential runs always sanitize),
    no ceilings. *)

val expand : matrix -> string -> t list
(** Every request in the matrix over one source, in deterministic
    (machine, config, analysis, gc-mode) order.  Unpreprocessed
    configurations collapse their analysis variants. *)

(** {1 Wire format}

    One JSON object per request — what [gcsafec serve] reads per line.
    Every field is optional except ["source"]; spellings match the CLI
    ("safe-peep", "stw", "every-3", "nth:5", ...). *)

val to_json : t -> Telemetry.Json.t

val of_json : Telemetry.Json.t -> (t, string) result
(** A malformed request is a structured [Error], never an exception:
    the service maps it to a source-error outcome, preserving the
    robustness identity for garbage traffic. *)
