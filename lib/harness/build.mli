(** Build configurations: source -> annotated AST -> optimized,
    register-allocated machine code.  These mirror the paper's measured
    builds. *)

type config =
  | Base  (** "-O": the unpreprocessed optimized baseline *)
  | Safe  (** "-O, safe": preprocessed for GC-safety, then optimized *)
  | Safe_peephole  (** [Safe] plus the assembly-level postprocessor *)
  | Debug  (** "-g": fully debuggable, unpreprocessed *)
  | Debug_checked  (** "-g, checked": pointer-arithmetic checks inserted *)

val config_name : config -> string

val config_id : config -> string
(** The CLI/wire spelling ("base", "safe", "safe-peep", "debug",
    "checked"); inverse of {!config_of_string}. *)

val config_of_string : string -> config option
(** Parse a CLI/wire spelling ("g" is accepted for [Debug]). *)

val preprocessed : config -> bool
(** Does annotation run at all for this configuration?  When it does
    not, the analysis choice cannot affect the artifact. *)

val all_configs : config list

type built = {
  b_config : config;
  b_ir : Ir.Instr.program;
  b_keep_lives : int;  (** annotations inserted (0 for unpreprocessed) *)
  b_size : int;  (** static size in instructions *)
}

(** {1 Build options}

    Everything besides the configuration and the source that affects the
    produced code lives in one record, so call sites stay stable as
    inputs are added and the artifact cache can key on the whole
    record. *)

type options = {
  nregs : int;  (** physical registers available to the allocator *)
  loop_heuristic : bool;
      (** the paper's optimization (3): slowly-varying loop base
          pointers.  Off by default, matching the paper's implementation
          ("Only optimizations (1) and (2) from above are implemented"). *)
  use_cache : bool;
      (** consult the process-wide artifact cache (see {!cache_stats}) *)
  analysis : Gcsafe.Mode.analysis;
      (** which program analysis prunes annotation sites.  The harness
          defaults to [A_flow] — annotate only what the dataflow clients
          cannot prove redundant; [A_none] reproduces the paper's
          implementation verbatim. *)
  gc_mode : Gcheap.Heap.gc_mode;
      (** which collector the built program is intended to run under
          (stop-the-world or generational).  Does not change the
          produced code, but it is part of the options identity the
          harness threads through the differential matrix. *)
}

val default : options
(** 32 registers, no loop heuristic, cache on, [A_flow] analysis,
    stop-the-world collection. *)

val for_machine : Machine.Machdesc.t -> options
(** {!default} with the machine's register file size, so measurements
    claiming a machine model are compiled for that machine's register
    pressure. *)

val compile : ?telemetry:Telemetry.Sink.t -> ?options:options -> config -> string -> built
(** Annotate (when the configuration calls for it), compile, optimize
    and register-allocate a source program.  Memoized in a process-wide
    content-addressed cache (see {!cache_key}) unless caching is
    disabled; cache hits return the physically-equal [built].  Safe to
    call from several domains at once: concurrent builds of the same key
    run once.

    With [telemetry], actual compilations run under a [build.compile]
    span, and per-call cache outcomes land in the sink's registry as
    [build/cache/{hits,misses,bypass}] — counters scoped to this sink,
    not the process. *)

(** {1 Sessions}

    The cache and its counters are process-wide by design (that is what
    makes cross-consumer memoization work), which used to mean
    back-to-back bench sections inherited each other's hit rates.  A
    session snapshots the counters at creation; {!session_stats} is the
    delta since, i.e. the traffic attributable to the session alone. *)

type session

val new_session : unit -> session

val session_stats : session -> Exec.Cache.stats
(** Hits/misses/evictions since {!new_session}; [entries] is current
    residency (not a delta). *)

(** {1 The artifact cache} *)

val artifact_key : options -> config -> string
(** The canonical identity of the code an (options, config) pair
    produces: configuration, register count, loop heuristic, analysis.
    Excludes the gc mode (a run-time property) and [use_cache] (steers
    the lookup, not the artifact).  Injective in those inputs; the
    differ's matrix key and {!cache_key} are both derived from it. *)

val cache_key : options -> config -> string -> string
(** The content address of a build: {!artifact_key} plus the gc mode
    and the source digest.  The gc mode does not change the produced
    code, but it is part of the record identity the harness threads
    around.  Injective in those inputs (modulo digest collisions). *)

val cache_stats : unit -> Exec.Cache.stats

val corrupt_cached : ?options:options -> config -> string -> bool
(** Chaos hook: rot the cached artifact for this build in place (its
    recorded fingerprint is left stale, so the next {!compile} hit
    detects the mismatch, counts a corruption, and rebuilds instead of
    serving it).  Returns [false] when nothing is cached for the key. *)

val reset_cache : unit -> unit
(** Drop all cached artifacts and zero the counters. *)

val set_cache_enabled : bool -> unit
(** Process-wide escape hatch (the CLI's [--no-cache]): when disabled,
    every [compile] rebuilds regardless of [options.use_cache]. *)

val cache_enabled : unit -> bool
