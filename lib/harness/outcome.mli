(** The structured outcome of one {!Request.t}: what a service
    completion, a CLI run and a differ observation all classify into.

    The robustness identity (Hawblitzel & Petrank) is the contract:
    {!execute} never raises.  Every submitted request — garbage source,
    injected allocation failures, hard heap ceilings, a full admission
    queue — ends in exactly one constructor of {!t}. *)

type t =
  | Ran of Measure.run_info  (** completed; the measurement payload *)
  | Detected of string  (** the checking runtime stopped the program *)
  | Corrupted of string  (** the heap-integrity sanitizer fired *)
  | Limit of string  (** a resource ceiling was hit *)
  | Exhausted of string  (** out of memory under the hard heap limit *)
  | Source_error of string  (** lexing, parsing, typing, compilation *)
  | Rejected of string
      (** admission control shed the request (queue full, or the
          service was shut down) — the [Rejected_overload] outcome *)
  | Quarantined of string
      (** a supervised worker exhausted its attempt cap on the task *)
  | Internal of string
      (** an unclassified exception leaked — always a bug, counted as
          unexpected by every report *)

val of_measure : Measure.outcome -> t

val classify : t -> Diagnostics.outcome
(** The diagnostic class (and hence exit code) of an outcome.
    [Rejected] maps to {!Diagnostics.Overload} (exit 8); [Internal] to
    {!Diagnostics.Internal_error} (exit 9). *)

val class_name : t -> string
(** [Diagnostics.outcome_name (classify o)] — the stable wire/report
    spelling ("ok", "fault", ..., "rejected-overload"). *)

val all_class_names : string list
(** Every class a request can end in, in exit-code order — reports
    iterate this so per-outcome counts always show every class. *)

val describe : t -> string

val to_json : t -> Telemetry.Json.t
(** The wire rendering a [gcsafec serve] session emits per request:
    class, detail, and for [Ran] the cycle/instruction/GC counts. *)

val execute :
  ?gc_point_sink:(int -> string -> unit) ->
  ?telemetry:Telemetry.Sink.t ->
  Request.t ->
  t
(** Compile (through the shared single-flight artifact cache) and run
    one request.  Total: classified through {!Diagnostics.of_exn}, with
    a catch-all to [Internal] — callers never see an exception. *)
