(** Rendering of the paper's tables (T1-T5) from fresh measurements.

    Each function recomputes the whole column set for the given machine and
    prints rows in the paper's layout.  The return values carry the raw
    numbers so the bench harness and the tests can assert on shapes
    ("who wins, by roughly what factor").

    Measurement and rendering are separate phases: rows are measured
    (optionally fanned out over a {!Exec.Pool.t} — builds go through the
    process-wide artifact cache either way) and only then printed, so
    parallel regeneration is byte-identical to serial. *)

(* build + execute one request; a table point is exactly a request
   (config, machine, analysis), so the constructor is the cell's name *)
let measure_request (req : Request.t) =
  let b =
    Build.compile
      ~options:(Request.build_options req)
      req.Request.config req.Request.source
  in
  (b, Measure.exec req b)

type cell = { c_config : Build.config; c_outcome : Measure.outcome }

type row = {
  r_workload : string;
  r_base : Measure.outcome;
  r_cells : cell list;
}

let measure_row ?(machine = Machine.Machdesc.sparc10) ~configs
    (w : Workloads.Registry.workload) : row =
  let src = w.Workloads.Registry.w_source in
  let _, base = measure_request (Request.make ~config:Build.Base ~machine src) in
  let cells =
    List.map
      (fun config ->
        let _, o = measure_request (Request.make ~config ~machine src) in
        { c_config = config; c_outcome = o })
      configs
  in
  { r_workload = w.Workloads.Registry.w_name; r_base = base; r_cells = cells }

let pp_slowdown_table fmt ~title ~configs rows =
  Format.fprintf fmt "%s:@." title;
  Format.fprintf fmt "  %-10s" "";
  List.iter
    (fun c -> Format.fprintf fmt "%-14s" (Build.config_name c))
    configs;
  Format.fprintf fmt "@.";
  List.iter
    (fun row ->
      Format.fprintf fmt "  %-10s" row.r_workload;
      let base_cycles = Measure.base_cycles_exn row.r_base in
      List.iter
        (fun cell ->
          Format.fprintf fmt "%-14s"
            (Measure.slowdown_cell ~base_cycles cell.c_outcome))
        row.r_cells;
      Format.fprintf fmt "@.")
    rows

(** Slowdown tables T1/T2/T3: one machine, columns (-O safe), (-g),
    (-g checked). *)
let slowdown_table ?(machine = Machine.Machdesc.sparc10) ?(out = Format.std_formatter)
    ?(suite = Workloads.Registry.paper_suite) ?(pool = Exec.Pool.serial) () :
    row list =
  let configs = [ Build.Safe; Build.Debug; Build.Debug_checked ] in
  let rows = Exec.Pool.map pool (measure_row ~machine ~configs) suite in
  pp_slowdown_table out
    ~title:
      (Printf.sprintf "Slowdown vs optimized baseline (%s)"
         machine.Machine.Machdesc.md_name)
    ~configs rows;
  rows

(** T4: static code size expansion (instruction counts of processed code
    only, as in the paper). *)
let size_table ?(machine = Machine.Machdesc.sparc10) ?(out = Format.std_formatter)
    ?(pool = Exec.Pool.serial) () =
  let configs = [ Build.Safe; Build.Debug; Build.Debug_checked ] in
  let options = Build.for_machine machine in
  let results =
    Exec.Pool.map pool
      (fun w ->
        let base = Build.compile ~options Build.Base w.Workloads.Registry.w_source in
        let sizes =
          List.map
            (fun c ->
              let b = Build.compile ~options c w.Workloads.Registry.w_source in
              (c, b.Build.b_size))
            configs
        in
        (w.Workloads.Registry.w_name, base.Build.b_size, sizes))
      Workloads.Registry.paper_suite
  in
  Format.fprintf out "Object code size expansion vs -O (%s):@."
    machine.Machine.Machdesc.md_name;
  Format.fprintf out "  %-10s" "";
  List.iter (fun c -> Format.fprintf out "%-14s" (Build.config_name c)) configs;
  Format.fprintf out "@.";
  List.iter
    (fun (name, base_size, sizes) ->
      Format.fprintf out "  %-10s" name;
      List.iter
        (fun (_, size) ->
          let pct =
            100.0
            *. float_of_int (size - base_size)
            /. float_of_int base_size
          in
          Format.fprintf out "%-14s" (Printf.sprintf "%.0f%%" pct))
        sizes;
      Format.fprintf out "@.")
    results;
  results

(* ------------------------------------------------------------------ *)

type analysis_row = {
  a_workload : string;
  a_keep_lives_none : int;  (** annotations under the paper's algorithm *)
  a_keep_lives_flow : int;  (** annotations surviving the dataflow clients *)
  a_base : Measure.outcome;
  a_safe_none : Measure.outcome;  (** -O safe, analysis off *)
  a_safe_flow : Measure.outcome;  (** -O safe, analysis on *)
}

(** Ablation of the [lib/analysis] dataflow clients: annotation counts
    and -O safe running time with analysis off (the paper's algorithm)
    and on. *)
let analysis_table ?(machine = Machine.Machdesc.sparc10)
    ?(out = Format.std_formatter) ?(suite = Workloads.Registry.paper_suite)
    ?(pool = Exec.Pool.serial) () : analysis_row list =
  let rows =
    Exec.Pool.map pool
      (fun w ->
        let src = w.Workloads.Registry.w_source in
        let _, base =
          measure_request (Request.make ~config:Build.Base ~machine src)
        in
        let bn, safe_none =
          measure_request
            (Request.make ~config:Build.Safe ~machine
               ~analysis:Gcsafe.Mode.A_none src)
        in
        let bf, safe_flow =
          measure_request
            (Request.make ~config:Build.Safe ~machine
               ~analysis:Gcsafe.Mode.A_flow src)
        in
        {
          a_workload = w.Workloads.Registry.w_name;
          a_keep_lives_none = bn.Build.b_keep_lives;
          a_keep_lives_flow = bf.Build.b_keep_lives;
          a_base = base;
          a_safe_none = safe_none;
          a_safe_flow = safe_flow;
        })
      suite
  in
  Format.fprintf out "Dataflow-analysis ablation, -O safe (%s):@."
    machine.Machine.Machdesc.md_name;
  Format.fprintf out "  %-10s%-10s%-10s%-10s%-14s%-14s@." "" "KL(none)"
    "KL(flow)" "pruned" "time(none)" "time(flow)";
  List.iter
    (fun r ->
      let base_cycles = Measure.base_cycles_exn r.a_base in
      Format.fprintf out "  %-10s%-10d%-10d%-10s%-14s%-14s@." r.a_workload
        r.a_keep_lives_none r.a_keep_lives_flow
        (Printf.sprintf "%d%%"
           (if r.a_keep_lives_none = 0 then 0
            else
              100
              * (r.a_keep_lives_none - r.a_keep_lives_flow)
              / r.a_keep_lives_none))
        (Measure.slowdown_cell ~base_cycles r.a_safe_none)
        (Measure.slowdown_cell ~base_cycles r.a_safe_flow))
    rows;
  rows

(** T5: residual overhead of safe + peephole postprocessing, time and
    size (the paper measured this on the SPARCstation 10). *)
let postprocessor_table ?(machine = Machine.Machdesc.sparc10)
    ?(out = Format.std_formatter) ?(pool = Exec.Pool.serial) () =
  let results =
    Exec.Pool.map pool
      (fun w ->
        let src = w.Workloads.Registry.w_source in
        let bb, base =
          measure_request (Request.make ~config:Build.Base ~machine src)
        in
        let pb, post =
          measure_request
            (Request.make ~config:Build.Safe_peephole ~machine src)
        in
        (w.Workloads.Registry.w_name, base, post, bb.Build.b_size, pb.Build.b_size))
      Workloads.Registry.paper_suite
  in
  Format.fprintf out
    "Safe + peephole postprocessor vs -O (%s):@."
    machine.Machine.Machdesc.md_name;
  Format.fprintf out "  %-10s%-14s%-14s@." "" "running time" "code size";
  List.iter
    (fun (name, base, post, base_size, post_size) ->
      let base_cycles = Measure.base_cycles_exn base in
      let time_cell = Measure.slowdown_cell ~base_cycles post in
      let size_pct =
        100.0
        *. float_of_int (post_size - base_size)
        /. float_of_int base_size
      in
      Format.fprintf out "  %-10s%-14s%-14s@." name time_cell
        (Printf.sprintf "%.0f%%" size_pct))
    results;
  results
