(** Differential execution across build configurations and machine models
    under one injected GC schedule.

    The paper's safety claim is relational: under *any* collection
    schedule, a GC-safe build must behave exactly like the optimized
    baseline does when no collection interferes.  Build the requests of
    a {!Request.matrix} once with {!build_matrix} (or
    {!build_of_matrix}), execute any subject under any schedule with
    {!observe}, and compare behaviour with {!diff}.

    A subject is simply a {!Request.t} paired with its built artifact;
    the per-subject config/machine/analysis/gc-mode fields this module
    used to duplicate live on the request now. *)

type subject = { s_request : Request.t; s_built : Build.built }

val subject_name : subject -> string
(** {!Request.describe} of the subject's request: ["config @ machine"],
    tagged with [" [analysis=none]"] for paper-verbatim subjects and
    [" [gen]"] for generational ones. *)

val default_machines : Machine.Machdesc.t list
(** The paper's three machine models
    ({!Request.default_matrix}[.m_machines]). *)

val build_matrix : ?pool:Exec.Pool.t -> Request.t list -> subject list
(** One subject per request, compiling each distinct
    {!Request.matrix_key} once (requests across machines with equal
    register counts and across collector modes share one artifact).
    [pool] fans the distinct builds out over worker domains.  Subjects
    come back in request order. *)

val build_of_matrix :
  ?pool:Exec.Pool.t -> Request.matrix -> string -> subject list
(** [build_matrix] over {!Request.expand}: the matrix-over-one-source
    convenience the CLI and stress plans use. *)

type obs =
  | Obs_ok of {
      ok_exit : int;
      ok_output : string;
      ok_live : int * int;
      ok_instrs : int;  (** dynamic instructions = number of safepoints *)
    }
  | Obs_detected of string
  | Obs_corrupted of string
  | Obs_limit of string
  | Obs_exhausted of string

val obs_of_outcome : Measure.outcome -> obs

val classify : obs -> Diagnostics.outcome
(** The structured class of one observation ({!Diagnostics.Ok} for
    [Obs_ok]), shared with the CLI's exit-code mapping. *)

val describe_obs : obs -> string

val observe :
  ?gc_point_sink:(int -> string -> unit) ->
  ?telemetry:Telemetry.Sink.t ->
  schedule:Machine.Schedule.t ->
  subject ->
  obs
(** Execute one subject under one schedule.  Sanitizing, ceilings, heap
    limit, OOM policy and failpoints all come from the subject's
    request — override with a record update on [s_request] before
    calling (the chaos sweep does).  [gc_point_sink] and [telemetry]
    stay per-call: observation channels, not request identity. *)

type mismatch =
  | Output_diff of { exp : string; got : string }
  | Heap_diff of { exp : int * int; got : int * int }
  | Fault_diff of string  (** program faulted; reference did not *)
  | Corruption_diff of string
  | Limit_diff of string
  | Exhausted_diff of string  (** program ran out of heap; reference did not *)

val mismatch_kind : mismatch -> string

val describe_mismatch : mismatch -> string

val diff : reference:obs -> obs -> mismatch option
(** [None] means behaviourally equal to the reference. *)

type cell = { c_subject : subject; c_obs : obs; c_mismatch : mismatch option }

val run_matrix : schedule:Machine.Schedule.t -> subject list -> cell list
(** Run the whole matrix under one schedule; each cell is diffed against
    the optimized baseline on the same machine under no injected
    collections (preferring the stop-the-world baseline when the matrix
    spans gc modes). *)
