(** Differential execution across build configurations and machine models
    under one injected GC schedule.

    The paper's safety claim is relational: under *any* collection
    schedule, a GC-safe build must behave exactly like the optimized
    baseline does when no collection interferes.  Build the config x
    machine matrix once with {!build_matrix}, execute any subject under
    any schedule with {!observe}, and compare behaviour with {!diff}. *)

type subject = {
  s_config : Build.config;
  s_machine : Machine.Machdesc.t;
  s_analysis : Gcsafe.Mode.analysis;
      (** which analysis pruned the annotations this subject was built
          with (meaningful for preprocessed configurations only) *)
  s_gc_mode : Gcheap.Heap.gc_mode;
      (** which collector the subject runs under (a run-time property:
          subjects across gc modes share one built artifact) *)
  s_built : Build.built;
}

val subject_name : subject -> string
(** ["config @ machine"], tagged with [" [analysis=none]"] for
    paper-verbatim subjects and [" [gen]"] for generational ones. *)

val default_machines : Machine.Machdesc.t list
(** The paper's three machine models. *)

val build_matrix :
  ?configs:Build.config list ->
  ?machines:Machine.Machdesc.t list ->
  ?analyses:Gcsafe.Mode.analysis list ->
  ?gc_modes:Gcheap.Heap.gc_mode list ->
  ?pool:Exec.Pool.t ->
  string ->
  subject list
(** Build every configuration for every machine model and every
    [analyses] variant (default [[A_flow]]; builds shared between
    machines with equal register counts).  Unpreprocessed configurations
    get one subject regardless of [analyses].  [gc_modes] (default
    [[Stw]]) multiplies subjects — not builds: the collector mode is a
    run-time property.  [pool] fans the distinct builds out over worker
    domains. *)

type obs =
  | Obs_ok of {
      ok_exit : int;
      ok_output : string;
      ok_live : int * int;
      ok_instrs : int;  (** dynamic instructions = number of safepoints *)
    }
  | Obs_detected of string
  | Obs_corrupted of string
  | Obs_limit of string
  | Obs_exhausted of string

val obs_of_outcome : Measure.outcome -> obs

val classify : obs -> Diagnostics.outcome
(** The structured class of one observation ({!Diagnostics.Ok} for
    [Obs_ok]), shared with the CLI's exit-code mapping. *)

val describe_obs : obs -> string

val observe :
  ?check_integrity:bool ->
  ?max_instrs:int ->
  ?max_heap:int ->
  ?gc_point_sink:(int -> string -> unit) ->
  ?telemetry:Telemetry.Sink.t ->
  ?heap_limit:int ->
  ?oom_policy:Gcheap.Heap.oom_policy ->
  ?alloc_failpoints:Gcheap.Failpoint.t ->
  schedule:Machine.Schedule.t ->
  subject ->
  obs
(** Execute one subject under one schedule.  Integrity checking and the
    final collection default to on: differential runs always sanitize.
    [telemetry] threads a sink into the VM — the stress driver replays
    findings under a tracer to capture their timelines.  The chaos
    sweep threads [heap_limit] / [oom_policy] / [alloc_failpoints]
    through to the heap (see {!Measure.run}). *)

type mismatch =
  | Output_diff of { exp : string; got : string }
  | Heap_diff of { exp : int * int; got : int * int }
  | Fault_diff of string  (** program faulted; reference did not *)
  | Corruption_diff of string
  | Limit_diff of string
  | Exhausted_diff of string  (** program ran out of heap; reference did not *)

val mismatch_kind : mismatch -> string

val describe_mismatch : mismatch -> string

val diff : reference:obs -> obs -> mismatch option
(** [None] means behaviourally equal to the reference. *)

type cell = { c_subject : subject; c_obs : obs; c_mismatch : mismatch option }

val run_matrix :
  ?check_integrity:bool ->
  schedule:Machine.Schedule.t ->
  subject list ->
  cell list
(** Run the whole matrix under one schedule; each cell is diffed against
    the optimized baseline on the same machine under no injected
    collections (preferring the stop-the-world baseline when the matrix
    spans gc modes). *)
