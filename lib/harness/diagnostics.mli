(** Structured failure classification shared by every consumer.

    The harness distinguishes ten outcome classes, and each has one
    process exit code; the CLI's subcommands, the differ, the stress
    driver and the service all classify through this module instead of
    re-matching exceptions or outcome constructors.

    Exit codes (stable, documented in the CLI header): 0 success,
    1 finding/divergence, 2 source or input error, 3 runtime fault
    detected, 4 resource limit, 5 heap corruption, 6 heap exhausted
    (out of memory under a hard heap limit), 7 task quarantined (a
    supervised task exhausted its attempt cap), 8 rejected under
    overload (admission control shed the request), 9 internal error
    (an unclassified exception — always a bug). *)

type outcome =
  | Ok  (** the program ran to completion *)
  | Source_error  (** lexing, parsing, typing, annotation, compilation *)
  | Fault  (** the checking runtime or the VM stopped the program *)
  | Limit  (** a resource ceiling (steps, heap bytes) was hit *)
  | Corruption  (** the heap-integrity sanitizer fired *)
  | Divergence  (** differential disagreement: a stress/differ finding *)
  | Heap_exhausted
      (** out of memory: the heap limit blocked a needed growth even
          after the configured recovery (emergency collection, retry) *)
  | Task_quarantined
      (** a supervised task exhausted its attempt cap and was isolated *)
  | Overload
      (** the service's bounded queue was full and admission control
          shed the request — a structured outcome, never a hang *)
  | Internal_error
      (** an exception no classifier owns leaked to the outcome
          boundary; the robustness identity counts this as a bug *)

val outcome_name : outcome -> string

val exit_code : outcome -> int

val of_exn : exn -> (outcome * string) option
(** Classify a harness exception and render its diagnostic message;
    [None] for exceptions the harness does not own. *)

val of_measure : Measure.outcome -> outcome * string
(** Classify a completed run ([Measure.Ran] is [Ok]). *)

val report : outcome -> string -> unit
(** Print the diagnostic to [stderr] in the CLI's format. *)

val handle : (unit -> 'a) -> 'a
(** Run a thunk; on a classified exception, {!report} it and [exit]
    with its code.  Unclassified exceptions propagate. *)
