(** Running built programs and computing paper-style slowdown cells. *)

type run_info = {
  o_cycles : int;
  o_instrs : int;
  o_size : int;
  o_output : string;
  o_exit : int;
  o_gc_count : int;
  o_gc_points : (int * string) list;
      (** injected collections that fired (safepoint index, location) *)
  o_live_objects : int;
  o_live_bytes : int;
  o_emergency : int;  (** emergency (collect-expand) collections run *)
  o_injected_failures : int;  (** allocation failpoints that fired *)
  o_allocs : int;  (** objects allocated (the failpoint ordinal space) *)
  o_increments : int;  (** incremental-marking steps run *)
  o_inc_max_pause : int;  (** largest increment, in words of work *)
  o_inc_overruns : int;  (** increments that exceeded the pause budget *)
  o_gc_max_pause_words : int;
      (** largest single GC pause on the deterministic words-of-work
          clock — per cycle in stop-the-world/generational mode, per
          increment in incremental mode, so it responds to the pause
          budget.  Tracked unconditionally (telemetry on or off). *)
  o_gc_total_pause_words : int;
  o_census : Gcheap.Census.t list;
      (** per-collection heap censuses, oldest first; empty unless
          [exec ~census:true] *)
}

type outcome =
  | Ran of run_info
  | Detected of string
      (** the checking runtime (or the VM's access checker) stopped the
          program — the paper's "<fails>" cells *)
  | Corrupted of string
      (** the heap-integrity sanitizer found a violated invariant *)
  | Limit of string  (** a resource ceiling (steps, heap bytes) was hit *)
  | Exhausted of string
      (** out of memory under the hard heap limit (after the configured
          recovery), or an injected failure under the trap policy *)

val describe : outcome -> string

val exec :
  ?gc_point_sink:(int -> string -> unit) ->
  ?telemetry:Telemetry.Sink.t ->
  ?census:bool ->
  Request.t ->
  Build.built ->
  outcome
(** Execute a built program under a {!Request.t} — the canonical runner;
    the request names the machine, schedule, collector mode, pause
    budget, ceilings, OOM policy and failpoints in one value.
    [gc_point_sink], [telemetry] and [census] stay per-call: they are
    observation channels, not part of the request's identity. *)

val slowdown_cell : base_cycles:int -> outcome -> string
(** Percentage slowdown rendered as in the paper's tables ("9%",
    "<fails>"). *)

val size_cell : base_size:int -> outcome -> string

val cycles : outcome -> int option

val output : outcome -> string option

exception Baseline_failed of string

val base_cycles_exn : outcome -> int

val census_to_json : Gcheap.Census.t -> Telemetry.Json.t
(** Wire rendering of a heap census (the census record itself lives in
    [Gcheap], which has no JSON dependency). *)
