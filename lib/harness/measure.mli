(** Running built programs and computing paper-style slowdown cells. *)

type run_info = {
  o_cycles : int;
  o_instrs : int;
  o_size : int;
  o_output : string;
  o_exit : int;
  o_gc_count : int;
  o_gc_points : (int * string) list;
      (** injected collections that fired (safepoint index, location) *)
  o_live_objects : int;
  o_live_bytes : int;
  o_emergency : int;  (** emergency (collect-expand) collections run *)
  o_injected_failures : int;  (** allocation failpoints that fired *)
  o_allocs : int;  (** objects allocated (the failpoint ordinal space) *)
}

type outcome =
  | Ran of run_info
  | Detected of string
      (** the checking runtime (or the VM's access checker) stopped the
          program — the paper's "<fails>" cells *)
  | Corrupted of string
      (** the heap-integrity sanitizer found a violated invariant *)
  | Limit of string  (** a resource ceiling (steps, heap bytes) was hit *)
  | Exhausted of string
      (** out of memory under the hard heap limit (after the configured
          recovery), or an injected failure under the trap policy *)

val describe : outcome -> string

val run :
  ?machine:Machine.Machdesc.t ->
  ?async_gc:int option ->
  ?schedule:Machine.Schedule.t ->
  ?check_integrity:bool ->
  ?final_collect:bool ->
  ?max_instrs:int ->
  ?max_heap:int ->
  ?gc_threshold:int ->
  ?gc_mode:Gcheap.Heap.gc_mode ->
  ?gc_point_sink:(int -> string -> unit) ->
  ?telemetry:Telemetry.Sink.t ->
  ?heap_limit:int ->
  ?oom_policy:Gcheap.Heap.oom_policy ->
  ?alloc_failpoints:Gcheap.Failpoint.t ->
  Build.built ->
  outcome
(** Execute a built program.  [schedule] takes precedence over the legacy
    [async_gc] (which maps to {!Machine.Schedule.Every}).  [telemetry]
    threads a sink into the VM (metrics, tracing, heap profiling);
    [gc_threshold] overrides the allocation volume between automatic
    collections (the profiler uses a small threshold to observe drag at
    fine grain); [gc_mode] selects stop-the-world (default) or
    generational collection.

    [heap_limit] (words, 0 = unlimited) is the hard ceiling on arena
    growth; [oom_policy] picks what an allocation that cannot be
    satisfied does (trap immediately, or run an emergency collection
    and retry — the default); [alloc_failpoints] injects deterministic
    allocation failures by ordinal.  A run stopped by the ceiling (or a
    trapped injected failure) is [Exhausted]. *)

val run_config :
  ?machine:Machine.Machdesc.t ->
  ?analysis:Gcsafe.Mode.analysis ->
  ?gc_mode:Gcheap.Heap.gc_mode ->
  Build.config ->
  string ->
  Build.built * outcome
(** Build and run one workload configuration on one machine.  [analysis]
    and [gc_mode] override the harness defaults ({!Build.default}'s
    [A_flow] / stop-the-world). *)

val slowdown_cell : base_cycles:int -> outcome -> string
(** Percentage slowdown rendered as in the paper's tables ("9%",
    "<fails>"). *)

val size_cell : base_size:int -> outcome -> string

val cycles : outcome -> int option

val output : outcome -> string option

exception Baseline_failed of string

val base_cycles_exn : outcome -> int
