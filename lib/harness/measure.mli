(** Running built programs and computing paper-style slowdown cells. *)

type run_info = {
  o_cycles : int;
  o_instrs : int;
  o_size : int;
  o_output : string;
  o_exit : int;
  o_gc_count : int;
  o_gc_points : (int * string) list;
      (** injected collections that fired (safepoint index, location) *)
  o_live_objects : int;
  o_live_bytes : int;
  o_emergency : int;  (** emergency (collect-expand) collections run *)
  o_injected_failures : int;  (** allocation failpoints that fired *)
  o_allocs : int;  (** objects allocated (the failpoint ordinal space) *)
}

type outcome =
  | Ran of run_info
  | Detected of string
      (** the checking runtime (or the VM's access checker) stopped the
          program — the paper's "<fails>" cells *)
  | Corrupted of string
      (** the heap-integrity sanitizer found a violated invariant *)
  | Limit of string  (** a resource ceiling (steps, heap bytes) was hit *)
  | Exhausted of string
      (** out of memory under the hard heap limit (after the configured
          recovery), or an injected failure under the trap policy *)

val describe : outcome -> string

val exec :
  ?gc_point_sink:(int -> string -> unit) ->
  ?telemetry:Telemetry.Sink.t ->
  Request.t ->
  Build.built ->
  outcome
(** Execute a built program under a {!Request.t} — the canonical runner;
    the request names the machine, schedule, collector mode, ceilings,
    OOM policy and failpoints in one value.  [gc_point_sink] and
    [telemetry] stay per-call: they are observation channels, not part
    of the request's identity.  {!run} and {!run_config} are deprecated
    shims over this function. *)

val run :
  ?machine:Machine.Machdesc.t ->
  ?async_gc:int option ->
  ?schedule:Machine.Schedule.t ->
  ?check_integrity:bool ->
  ?final_collect:bool ->
  ?max_instrs:int ->
  ?max_heap:int ->
  ?gc_threshold:int ->
  ?gc_mode:Gcheap.Heap.gc_mode ->
  ?gc_point_sink:(int -> string -> unit) ->
  ?telemetry:Telemetry.Sink.t ->
  ?heap_limit:int ->
  ?oom_policy:Gcheap.Heap.oom_policy ->
  ?alloc_failpoints:Gcheap.Failpoint.t ->
  Build.built ->
  outcome
(** Deprecated: the optional-argument spelling of {!exec}, kept as a
    shim for one release (as [Build.build] was for [Build.compile]).
    New code should build a {!Request.t} and call {!exec}.  [schedule]
    takes precedence over the legacy [async_gc] (which maps to
    {!Machine.Schedule.Every}); each argument maps to the request field
    of the same name. *)

val run_config :
  ?machine:Machine.Machdesc.t ->
  ?analysis:Gcsafe.Mode.analysis ->
  ?gc_mode:Gcheap.Heap.gc_mode ->
  Build.config ->
  string ->
  Build.built * outcome
(** Deprecated shim: build and run one workload configuration on one
    machine ({!Request.make} + {!Build.compile} + {!exec}).  [analysis]
    and [gc_mode] override the harness defaults ({!Build.default}'s
    [A_flow] / stop-the-world). *)

val slowdown_cell : base_cycles:int -> outcome -> string
(** Percentage slowdown rendered as in the paper's tables ("9%",
    "<fails>"). *)

val size_cell : base_size:int -> outcome -> string

val cycles : outcome -> int option

val output : outcome -> string option

exception Baseline_failed of string

val base_cycles_exn : outcome -> int
