(** Structured failure classification shared by every consumer: the
    exception -> (class, message) mapping that used to be hand-rolled in
    the CLI's [handle_errors], with one exit code per class. *)

type outcome =
  | Ok
  | Source_error
  | Fault
  | Limit
  | Corruption
  | Divergence
  | Heap_exhausted
  | Task_quarantined
  | Overload
  | Internal_error

let outcome_name = function
  | Ok -> "ok"
  | Source_error -> "source-error"
  | Fault -> "fault"
  | Limit -> "limit"
  | Corruption -> "corruption"
  | Divergence -> "divergence"
  | Heap_exhausted -> "heap-exhausted"
  | Task_quarantined -> "task-quarantined"
  | Overload -> "rejected-overload"
  | Internal_error -> "internal-error"

let exit_code = function
  | Ok -> 0
  | Divergence -> 1
  | Source_error -> 2
  | Fault -> 3
  | Limit -> 4
  | Corruption -> 5
  | Heap_exhausted -> 6
  | Task_quarantined -> 7
  | Overload -> 8
  | Internal_error -> 9

let of_exn = function
  | Csyntax.Lexer.Error (m, loc) ->
      Some
        ( Source_error,
          Printf.sprintf "lex error at %s: %s" (Csyntax.Loc.to_string loc) m )
  | Csyntax.Parser.Error (m, loc) ->
      Some
        ( Source_error,
          Printf.sprintf "parse error at %s: %s" (Csyntax.Loc.to_string loc) m
        )
  | Csyntax.Typecheck.Error (m, loc) ->
      Some
        ( Source_error,
          Printf.sprintf "type error at %s: %s" (Csyntax.Loc.to_string loc) m )
  | Gcsafe.Annotate.Unnormalized (m, loc) ->
      Some
        ( Source_error,
          Printf.sprintf "annotation error at %s: %s"
            (Csyntax.Loc.to_string loc) m )
  | Ir.Compile.Unsupported (m, loc) ->
      Some
        ( Source_error,
          Printf.sprintf "unsupported at %s: %s" (Csyntax.Loc.to_string loc) m
        )
  | Sys_error m -> Some (Source_error, Printf.sprintf "error: %s" m)
  | Machine.Vm.Fault m -> Some (Fault, Printf.sprintf "fault: %s" m)
  | Machine.Vm.Trap (k, m) ->
      Some (Limit, Printf.sprintf "%s: %s" (Machine.Vm.trap_kind_name k) m)
  | Gcheap.Heap.Heap_exhausted m -> Some (Heap_exhausted, m)
  | Exec.Pool.Crash m ->
      Some (Task_quarantined, Printf.sprintf "worker crash: %s" m)
  | Exec.Pool.Deadline_exceeded ->
      Some (Task_quarantined, "task deadline exceeded")
  | Gcheap.Heap.Heap_corruption vs ->
      Some
        ( Corruption,
          Printf.sprintf "heap corruption: %s"
            (String.concat "; "
               (List.map
                  (fun v -> Format.asprintf "%a" Gcheap.Heap.pp_violation v)
                  vs)) )
  | _ -> None

let of_measure = function
  | Measure.Ran r -> (Ok, Printf.sprintf "ran (exit %d)" r.Measure.o_exit)
  | Measure.Detected m -> (Fault, "detected: " ^ m)
  | Measure.Limit m -> (Limit, "limit: " ^ m)
  | Measure.Corrupted m -> (Corruption, "heap corruption: " ^ m)
  | Measure.Exhausted m -> (Heap_exhausted, m)

let report _outcome message = Printf.eprintf "%s\n" message

let handle f =
  try f ()
  with e -> (
    match of_exn e with
    | Some (outcome, message) ->
        report outcome message;
        exit (exit_code outcome)
    | None -> raise e)
