(** Differential execution across build configurations and machine models
    under one injected GC schedule.

    The paper's safety claim is relational: under *any* collection
    schedule, a GC-safe build must behave exactly like the optimized
    baseline does when no collection interferes.  This module provides the
    machinery for testing that relation: build the requests of a
    {!Request.matrix} once, execute any subject under any schedule, and
    diff the observable behaviour — output, exit code, final live heap,
    and fault class — against a reference observation. *)

type subject = { s_request : Request.t; s_built : Build.built }

let subject_name s = Request.describe s.s_request

let default_machines = Request.default_matrix.Request.m_machines

(** Build one subject per request, compiling each distinct
    {!Request.matrix_key} once.  Register allocation is the only
    machine-dependent build step and the gc mode affects the run, not
    the artifact, so requests across machines with equal register counts
    and across collector modes share one built artifact.  [pool] fans
    the distinct builds out over worker domains.  Subjects come back in
    the order of [requests]. *)
let build_matrix ?(pool = Exec.Pool.serial) (requests : Request.t list) :
    subject list =
  let distinct =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun r ->
        let key = Request.matrix_key r in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      requests
  in
  let built =
    Exec.Pool.map pool
      (fun r ->
        ( Request.matrix_key r,
          Build.compile
            ~options:(Request.build_options r)
            r.Request.config r.Request.source ))
      distinct
  in
  List.map
    (fun r -> { s_request = r; s_built = List.assoc (Request.matrix_key r) built })
    requests

(** The matrix-over-one-source convenience the CLI and the stress plans
    use: expand, then build. *)
let build_of_matrix ?pool (m : Request.matrix) (source : string) : subject list
    =
  build_matrix ?pool (Request.expand m source)

(** What one run observably did.  [Obs_ok] carries everything the paper
    treats as program behaviour; the three failure observations carry the
    diagnostic. *)
type obs =
  | Obs_ok of {
      ok_exit : int;
      ok_output : string;
      ok_live : int * int;
      ok_instrs : int;
    }
  | Obs_detected of string
  | Obs_corrupted of string
  | Obs_limit of string
  | Obs_exhausted of string

let obs_of_outcome = function
  | Measure.Ran r ->
      Obs_ok
        {
          ok_exit = r.Measure.o_exit;
          ok_output = r.Measure.o_output;
          ok_live = (r.Measure.o_live_objects, r.Measure.o_live_bytes);
          ok_instrs = r.Measure.o_instrs;
        }
  | Measure.Detected m -> Obs_detected m
  | Measure.Corrupted m -> Obs_corrupted m
  | Measure.Limit m -> Obs_limit m
  | Measure.Exhausted m -> Obs_exhausted m

(** The structured class of one observation, for exit codes and
    failure-kind decisions shared with the CLI. *)
let classify = function
  | Obs_ok _ -> Diagnostics.Ok
  | Obs_detected _ -> Diagnostics.Fault
  | Obs_corrupted _ -> Diagnostics.Corruption
  | Obs_limit _ -> Diagnostics.Limit
  | Obs_exhausted _ -> Diagnostics.Heap_exhausted

let describe_obs = function
  | Obs_ok o ->
      Printf.sprintf "exit %d, %d byte(s) of output, %d live object(s)"
        o.ok_exit
        (String.length o.ok_output)
        (fst o.ok_live)
  | Obs_detected m -> "fault: " ^ m
  | Obs_corrupted m -> "heap corruption: " ^ m
  | Obs_limit m -> "resource limit: " ^ m
  | Obs_exhausted m -> "heap exhausted: " ^ m

(** Execute [subject] under [schedule].  Everything else — sanitizing,
    ceilings, heap limit, OOM policy, failpoints — comes from the
    subject's request; override with a record update on [s_request]
    before calling.  [gc_point_sink] and [telemetry] stay per-call:
    they are observation channels, not part of the request. *)
let observe ?gc_point_sink ?telemetry ~schedule subject : obs =
  obs_of_outcome
    (Measure.exec ?gc_point_sink ?telemetry
       { subject.s_request with Request.schedule }
       subject.s_built)

(** How an observation deviates from the reference behaviour. *)
type mismatch =
  | Output_diff of { exp : string; got : string }
      (** exit code folded into the rendered strings *)
  | Heap_diff of { exp : int * int; got : int * int }
  | Fault_diff of string  (** program faulted; reference did not *)
  | Corruption_diff of string
  | Limit_diff of string
  | Exhausted_diff of string  (** program ran out of heap; reference did not *)

let mismatch_kind = function
  | Output_diff _ -> "output"
  | Heap_diff _ -> "final-heap"
  | Fault_diff _ -> "fault"
  | Corruption_diff _ -> "corruption"
  | Limit_diff _ -> "limit"
  | Exhausted_diff _ -> "heap-exhausted"

let describe_mismatch = function
  | Output_diff d -> Printf.sprintf "expected %S, got %S" d.exp d.got
  | Heap_diff d ->
      Printf.sprintf
        "final heap: expected %d object(s) / %d byte(s), got %d / %d"
        (fst d.exp) (snd d.exp) (fst d.got) (snd d.got)
  | Fault_diff m -> m
  | Corruption_diff m -> m
  | Limit_diff m -> m
  | Exhausted_diff m -> m

(** Diff [got] against [reference].  [None] means behaviourally equal. *)
let diff ~reference got : mismatch option =
  match (reference, got) with
  | Obs_ok r, Obs_ok g ->
      if r.ok_exit <> g.ok_exit || not (String.equal r.ok_output g.ok_output)
      then
        Some
          (Output_diff
             {
               exp = Printf.sprintf "exit=%d %s" r.ok_exit r.ok_output;
               got = Printf.sprintf "exit=%d %s" g.ok_exit g.ok_output;
             })
      else if r.ok_live <> g.ok_live then
        Some (Heap_diff { exp = r.ok_live; got = g.ok_live })
      else None
  (* Same fault class as the reference counts as agreement: where in the
     program a checking build stops can shift with the schedule, but the
     class of behaviour is what the paper compares. *)
  | Obs_detected _, Obs_detected _ -> None
  | Obs_corrupted _, Obs_corrupted _ -> None
  | Obs_limit _, Obs_limit _ -> None
  | Obs_exhausted _, Obs_exhausted _ -> None
  | _, Obs_detected m -> Some (Fault_diff m)
  | _, Obs_corrupted m -> Some (Corruption_diff m)
  | _, Obs_limit m -> Some (Limit_diff m)
  | _, Obs_exhausted m -> Some (Exhausted_diff m)
  | (Obs_detected _ | Obs_corrupted _ | Obs_limit _ | Obs_exhausted _), Obs_ok g
    ->
      Some
        (Output_diff
           {
             exp = "a fault (matching the reference)";
             got = Printf.sprintf "exit=%d %s" g.ok_exit g.ok_output;
           })

type cell = { c_subject : subject; c_obs : obs; c_mismatch : mismatch option }

(** Run the whole matrix under one schedule.  The reference for every cell
    is the optimized baseline ([Base]) on the same machine under [Auto]
    (no injected collections) — the paper's notion of intended behaviour.
    When the matrix spans gc modes, the stop-the-world baseline is
    preferred: generational subjects must match the paper's collector. *)
let run_matrix ~schedule (subjects : subject list) : cell list =
  let references = Hashtbl.create 4 in
  let reference_for (machine : Machine.Machdesc.t) =
    let key = machine.Machine.Machdesc.md_name in
    match Hashtbl.find_opt references key with
    | Some r -> r
    | None ->
        let bases =
          List.filter
            (fun s ->
              s.s_request.Request.config = Build.Base
              && s.s_request.Request.machine.Machine.Machdesc.md_name = key)
            subjects
        in
        let base =
          match
            List.find_opt
              (fun s -> s.s_request.Request.gc_mode = Gcheap.Heap.Stw)
              bases
          with
          | Some s -> s
          | None -> List.hd bases
        in
        let r = observe ~schedule:Machine.Schedule.Auto base in
        Hashtbl.add references key r;
        r
  in
  List.map
    (fun s ->
      let reference = reference_for s.s_request.Request.machine in
      let obs = observe ~schedule s in
      { c_subject = s; c_obs = obs; c_mismatch = diff ~reference obs })
    subjects
