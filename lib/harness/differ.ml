(** Differential execution across build configurations and machine models
    under one injected GC schedule.

    The paper's safety claim is relational: under *any* collection
    schedule, a GC-safe build must behave exactly like the optimized
    baseline does when no collection interferes.  This module provides the
    machinery for testing that relation: build the full config x machine
    matrix once, execute any subject under any schedule, and diff the
    observable behaviour — output, exit code, final live heap, and fault
    class — against a reference observation. *)

type subject = {
  s_config : Build.config;
  s_machine : Machine.Machdesc.t;
  s_analysis : Gcsafe.Mode.analysis;
  s_gc_mode : Gcheap.Heap.gc_mode;
  s_built : Build.built;
}

(* the harness defaults ([A_flow], stop-the-world collection) stay
   untagged; the variants announce themselves *)
let subject_name s =
  let tag =
    match s.s_analysis with
    | Gcsafe.Mode.A_flow -> ""
    | Gcsafe.Mode.A_none -> " [analysis=none]"
  in
  let gtag =
    match s.s_gc_mode with Gcheap.Heap.Stw -> "" | Gcheap.Heap.Gen -> " [gen]"
  in
  Printf.sprintf "%s @ %s%s%s"
    (Build.config_name s.s_config)
    s.s_machine.Machine.Machdesc.md_name tag gtag

let default_machines =
  [
    Machine.Machdesc.sparc2;
    Machine.Machdesc.sparc10;
    Machine.Machdesc.pentium90;
  ]

(* does annotation run at all for this configuration?  If not, the
   analysis choice cannot affect the artifact and one subject suffices. *)
let preprocessed = function
  | Build.Safe | Build.Safe_peephole | Build.Debug_checked -> true
  | Build.Base | Build.Debug -> false

(** Build every configuration for every machine model and every analysis
    variant.  Register allocation is the only machine-dependent build
    step, so builds are shared between machines with equal register
    counts — the content-addressed artifact cache keys on the register
    count, so the sharing falls out of {!Build.compile}.  Unpreprocessed
    configurations ([Base], [Debug]) get a single subject regardless of
    [analyses].  The gc mode affects the run, not the artifact, so
    [gc_modes] multiplies subjects without multiplying builds.  [pool]
    fans the distinct (config, register-count, analysis) builds out over
    worker domains. *)
let build_matrix ?(configs = Build.all_configs) ?(machines = default_machines)
    ?(analyses = [ Gcsafe.Mode.A_flow ])
    ?(gc_modes = [ Gcheap.Heap.Stw ]) ?(pool = Exec.Pool.serial) source :
    subject list =
  let variants config =
    if preprocessed config then List.sort_uniq compare analyses
    else [ Build.default.Build.analysis ]
  in
  let distinct =
    List.sort_uniq compare
      (List.concat_map
         (fun (machine : Machine.Machdesc.t) ->
           List.concat_map
             (fun config ->
               List.map
                 (fun analysis ->
                   (config, machine.Machine.Machdesc.md_regs, analysis))
                 (variants config))
             configs)
         machines)
  in
  let built =
    Exec.Pool.map pool
      (fun ((config, nregs, analysis) as key) ->
        ( key,
          Build.compile
            ~options:{ Build.default with Build.nregs; Build.analysis }
            config source ))
      distinct
  in
  let gc_modes = List.sort_uniq compare gc_modes in
  List.concat_map
    (fun machine ->
      let nregs = machine.Machine.Machdesc.md_regs in
      List.concat_map
        (fun config ->
          List.concat_map
            (fun analysis ->
              List.map
                (fun gc_mode ->
                  {
                    s_config = config;
                    s_machine = machine;
                    s_analysis = analysis;
                    s_gc_mode = gc_mode;
                    s_built = List.assoc (config, nregs, analysis) built;
                  })
                gc_modes)
            (variants config))
        configs)
    machines

(** What one run observably did.  [Obs_ok] carries everything the paper
    treats as program behaviour; the three failure observations carry the
    diagnostic. *)
type obs =
  | Obs_ok of {
      ok_exit : int;
      ok_output : string;
      ok_live : int * int;
      ok_instrs : int;
    }
  | Obs_detected of string
  | Obs_corrupted of string
  | Obs_limit of string
  | Obs_exhausted of string

let obs_of_outcome = function
  | Measure.Ran r ->
      Obs_ok
        {
          ok_exit = r.Measure.o_exit;
          ok_output = r.Measure.o_output;
          ok_live = (r.Measure.o_live_objects, r.Measure.o_live_bytes);
          ok_instrs = r.Measure.o_instrs;
        }
  | Measure.Detected m -> Obs_detected m
  | Measure.Corrupted m -> Obs_corrupted m
  | Measure.Limit m -> Obs_limit m
  | Measure.Exhausted m -> Obs_exhausted m

(** The structured class of one observation, for exit codes and
    failure-kind decisions shared with the CLI. *)
let classify = function
  | Obs_ok _ -> Diagnostics.Ok
  | Obs_detected _ -> Diagnostics.Fault
  | Obs_corrupted _ -> Diagnostics.Corruption
  | Obs_limit _ -> Diagnostics.Limit
  | Obs_exhausted _ -> Diagnostics.Heap_exhausted

let describe_obs = function
  | Obs_ok o ->
      Printf.sprintf "exit %d, %d byte(s) of output, %d live object(s)"
        o.ok_exit
        (String.length o.ok_output)
        (fst o.ok_live)
  | Obs_detected m -> "fault: " ^ m
  | Obs_corrupted m -> "heap corruption: " ^ m
  | Obs_limit m -> "resource limit: " ^ m
  | Obs_exhausted m -> "heap exhausted: " ^ m

(** Execute [subject] under [schedule].  Integrity checking and the final
    collection default to on: differential runs always sanitize. *)
let observe ?(check_integrity = true) ?max_instrs ?max_heap ?gc_point_sink
    ?telemetry ?heap_limit ?oom_policy ?alloc_failpoints ~schedule subject :
    obs =
  obs_of_outcome
    (Measure.run ~machine:subject.s_machine ~schedule ~check_integrity
       ~final_collect:true ~gc_mode:subject.s_gc_mode ?max_instrs ?max_heap
       ?gc_point_sink ?telemetry ?heap_limit ?oom_policy ?alloc_failpoints
       subject.s_built)

(** How an observation deviates from the reference behaviour. *)
type mismatch =
  | Output_diff of { exp : string; got : string }
      (** exit code folded into the rendered strings *)
  | Heap_diff of { exp : int * int; got : int * int }
  | Fault_diff of string  (** program faulted; reference did not *)
  | Corruption_diff of string
  | Limit_diff of string
  | Exhausted_diff of string  (** program ran out of heap; reference did not *)

let mismatch_kind = function
  | Output_diff _ -> "output"
  | Heap_diff _ -> "final-heap"
  | Fault_diff _ -> "fault"
  | Corruption_diff _ -> "corruption"
  | Limit_diff _ -> "limit"
  | Exhausted_diff _ -> "heap-exhausted"

let describe_mismatch = function
  | Output_diff d -> Printf.sprintf "expected %S, got %S" d.exp d.got
  | Heap_diff d ->
      Printf.sprintf
        "final heap: expected %d object(s) / %d byte(s), got %d / %d"
        (fst d.exp) (snd d.exp) (fst d.got) (snd d.got)
  | Fault_diff m -> m
  | Corruption_diff m -> m
  | Limit_diff m -> m
  | Exhausted_diff m -> m

(** Diff [got] against [reference].  [None] means behaviourally equal. *)
let diff ~reference got : mismatch option =
  match (reference, got) with
  | Obs_ok r, Obs_ok g ->
      if r.ok_exit <> g.ok_exit || not (String.equal r.ok_output g.ok_output)
      then
        Some
          (Output_diff
             {
               exp = Printf.sprintf "exit=%d %s" r.ok_exit r.ok_output;
               got = Printf.sprintf "exit=%d %s" g.ok_exit g.ok_output;
             })
      else if r.ok_live <> g.ok_live then
        Some (Heap_diff { exp = r.ok_live; got = g.ok_live })
      else None
  (* Same fault class as the reference counts as agreement: where in the
     program a checking build stops can shift with the schedule, but the
     class of behaviour is what the paper compares. *)
  | Obs_detected _, Obs_detected _ -> None
  | Obs_corrupted _, Obs_corrupted _ -> None
  | Obs_limit _, Obs_limit _ -> None
  | Obs_exhausted _, Obs_exhausted _ -> None
  | _, Obs_detected m -> Some (Fault_diff m)
  | _, Obs_corrupted m -> Some (Corruption_diff m)
  | _, Obs_limit m -> Some (Limit_diff m)
  | _, Obs_exhausted m -> Some (Exhausted_diff m)
  | (Obs_detected _ | Obs_corrupted _ | Obs_limit _ | Obs_exhausted _), Obs_ok g
    ->
      Some
        (Output_diff
           {
             exp = "a fault (matching the reference)";
             got = Printf.sprintf "exit=%d %s" g.ok_exit g.ok_output;
           })

type cell = { c_subject : subject; c_obs : obs; c_mismatch : mismatch option }

(** Run the whole matrix under one schedule.  The reference for every cell
    is the optimized baseline ([Base]) on the same machine under [Auto]
    (no injected collections) — the paper's notion of intended behaviour.
    When the matrix spans gc modes, the stop-the-world baseline is
    preferred: generational subjects must match the paper's collector. *)
let run_matrix ?(check_integrity = true) ~schedule (subjects : subject list) :
    cell list =
  let references = Hashtbl.create 4 in
  let reference_for machine =
    let key = machine.Machine.Machdesc.md_name in
    match Hashtbl.find_opt references key with
    | Some r -> r
    | None ->
        let bases =
          List.filter
            (fun s ->
              s.s_config = Build.Base
              && s.s_machine.Machine.Machdesc.md_name = key)
            subjects
        in
        let base =
          match
            List.find_opt (fun s -> s.s_gc_mode = Gcheap.Heap.Stw) bases
          with
          | Some s -> s
          | None -> List.hd bases
        in
        let r = observe ~check_integrity ~schedule:Machine.Schedule.Auto base in
        Hashtbl.add references key r;
        r
  in
  List.map
    (fun s ->
      let reference = reference_for s.s_machine in
      let obs = observe ~check_integrity ~schedule s in
      { c_subject = s; c_obs = obs; c_mismatch = diff ~reference obs })
    subjects
