(** Rendering of the paper's tables (T1-T5) from fresh measurements.  Each
    function recomputes its column set for the given machine, prints rows
    in the paper's layout, and returns the raw numbers for assertions.

    Measurement is separated from rendering: pass [?pool] to fan row
    measurement out over worker domains — builds go through the
    process-wide artifact cache either way, and the printed table is
    byte-identical to a serial run. *)

type cell = { c_config : Build.config; c_outcome : Measure.outcome }

type row = {
  r_workload : string;
  r_base : Measure.outcome;
  r_cells : cell list;
}

val measure_row :
  ?machine:Machine.Machdesc.t ->
  configs:Build.config list ->
  Workloads.Registry.workload ->
  row

val slowdown_table :
  ?machine:Machine.Machdesc.t ->
  ?out:Format.formatter ->
  ?suite:Workloads.Registry.workload list ->
  ?pool:Exec.Pool.t ->
  unit ->
  row list
(** T1/T2/T3: slowdown of (-O safe), (-g), (-g checked) over -O. *)

val size_table :
  ?machine:Machine.Machdesc.t ->
  ?out:Format.formatter ->
  ?pool:Exec.Pool.t ->
  unit ->
  (string * int * (Build.config * int) list) list
(** T4: static code size expansion; returns
    [(workload, base_size, per-config sizes)]. *)

type analysis_row = {
  a_workload : string;
  a_keep_lives_none : int;  (** annotations under the paper's algorithm *)
  a_keep_lives_flow : int;  (** annotations surviving the dataflow clients *)
  a_base : Measure.outcome;
  a_safe_none : Measure.outcome;  (** -O safe, analysis off *)
  a_safe_flow : Measure.outcome;  (** -O safe, analysis on *)
}

val analysis_table :
  ?machine:Machine.Machdesc.t ->
  ?out:Format.formatter ->
  ?suite:Workloads.Registry.workload list ->
  ?pool:Exec.Pool.t ->
  unit ->
  analysis_row list
(** Ablation of the [lib/analysis] dataflow clients: per workload, the
    KEEP_LIVE counts and the -O safe slowdown with analysis off (the
    paper's algorithm) and on. *)

val postprocessor_table :
  ?machine:Machine.Machdesc.t ->
  ?out:Format.formatter ->
  ?pool:Exec.Pool.t ->
  unit ->
  (string * Measure.outcome * Measure.outcome * int * int) list
(** T5: residual time/size of safe + peephole vs -O; returns
    [(workload, base outcome, postprocessed outcome, base size, size)]. *)
