(** Structured request outcomes.  See the interface for the contract. *)

type t =
  | Ran of Measure.run_info
  | Detected of string
  | Corrupted of string
  | Limit of string
  | Exhausted of string
  | Source_error of string
  | Rejected of string
  | Quarantined of string
  | Internal of string

let of_measure = function
  | Measure.Ran r -> Ran r
  | Measure.Detected m -> Detected m
  | Measure.Corrupted m -> Corrupted m
  | Measure.Limit m -> Limit m
  | Measure.Exhausted m -> Exhausted m

let classify = function
  | Ran _ -> Diagnostics.Ok
  | Detected _ -> Diagnostics.Fault
  | Corrupted _ -> Diagnostics.Corruption
  | Limit _ -> Diagnostics.Limit
  | Exhausted _ -> Diagnostics.Heap_exhausted
  | Source_error _ -> Diagnostics.Source_error
  | Rejected _ -> Diagnostics.Overload
  | Quarantined _ -> Diagnostics.Task_quarantined
  | Internal _ -> Diagnostics.Internal_error

let class_name o = Diagnostics.outcome_name (classify o)

(* exit-code order; Divergence is a relational verdict, not a request
   outcome, so it is absent *)
let all_class_names =
  List.map Diagnostics.outcome_name
    [
      Diagnostics.Ok;
      Diagnostics.Source_error;
      Diagnostics.Fault;
      Diagnostics.Limit;
      Diagnostics.Corruption;
      Diagnostics.Heap_exhausted;
      Diagnostics.Task_quarantined;
      Diagnostics.Overload;
      Diagnostics.Internal_error;
    ]

let describe = function
  | Ran r -> Printf.sprintf "ran (exit %d)" r.Measure.o_exit
  | Detected m -> "detected: " ^ m
  | Corrupted m -> "heap corruption: " ^ m
  | Limit m -> "resource limit: " ^ m
  | Exhausted m -> "heap exhausted: " ^ m
  | Source_error m -> "source error: " ^ m
  | Rejected m -> "rejected (overload): " ^ m
  | Quarantined m -> "quarantined: " ^ m
  | Internal m -> "internal error: " ^ m

module Json = Telemetry.Json

let to_json o =
  let base = [ ("outcome", Json.Str (class_name o)) ] in
  match o with
  | Ran r ->
      Json.Obj
        (base
        @ [
            ("exit", Json.Int r.Measure.o_exit);
            ("cycles", Json.Int r.Measure.o_cycles);
            ("instrs", Json.Int r.Measure.o_instrs);
            ("collections", Json.Int r.Measure.o_gc_count);
            ("emergency", Json.Int r.Measure.o_emergency);
            ("injected_failures", Json.Int r.Measure.o_injected_failures);
            ("output_bytes", Json.Int (String.length r.Measure.o_output));
          ])
  | Detected m | Corrupted m | Limit m | Exhausted m | Source_error m
  | Rejected m | Quarantined m | Internal m ->
      Json.Obj (base @ [ ("detail", Json.Str m) ])

let execute ?gc_point_sink ?telemetry (r : Request.t) : t =
  match
    let b =
      Build.compile ?telemetry ~options:(Request.build_options r) r.Request.config
        r.Request.source
    in
    Measure.exec ?gc_point_sink ?telemetry r b
  with
  | o -> of_measure o
  | exception e -> (
      match Diagnostics.of_exn e with
      | Some (Diagnostics.Source_error, m) -> Source_error m
      | Some (Diagnostics.Fault, m) -> Detected m
      | Some (Diagnostics.Limit, m) -> Limit m
      | Some (Diagnostics.Heap_exhausted, m) -> Exhausted m
      | Some (Diagnostics.Corruption, m) -> Corrupted m
      | Some (Diagnostics.Task_quarantined, m) -> Quarantined m
      | Some
          ( ( Diagnostics.Ok | Diagnostics.Divergence | Diagnostics.Overload
            | Diagnostics.Internal_error ),
            m ) ->
          Internal m
      | None -> Internal (Printexc.to_string e))
