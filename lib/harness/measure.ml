(** Running built programs and computing paper-style slowdown cells. *)

type run_info = {
  o_cycles : int;
  o_instrs : int;
  o_size : int;
  o_output : string;
  o_exit : int;
  o_gc_count : int;
  o_gc_points : (int * string) list;
      (** injected collections that fired (safepoint index, location) *)
  o_live_objects : int;
  o_live_bytes : int;
  o_emergency : int;  (** emergency (collect-expand) collections run *)
  o_injected_failures : int;  (** allocation failpoints that fired *)
  o_allocs : int;  (** objects allocated (the failpoint ordinal space) *)
  o_increments : int;  (** incremental-marking steps run *)
  o_inc_max_pause : int;  (** largest increment, in words of work *)
  o_inc_overruns : int;  (** increments that exceeded the pause budget *)
  o_gc_max_pause_words : int;
      (** largest single GC pause on the words-of-work clock (any mode;
          tracked unconditionally) *)
  o_gc_total_pause_words : int;
  o_census : Gcheap.Census.t list;
      (** per-collection heap censuses, oldest first; empty unless
          [exec ~census:true] *)
}

type outcome =
  | Ran of run_info
  | Detected of string
      (** the checking runtime (or the VM's access checker) stopped the
          program — the paper's "<fails>" cells *)
  | Corrupted of string
      (** the heap-integrity sanitizer found a violated invariant *)
  | Limit of string  (** a resource ceiling (steps, heap bytes) was hit *)
  | Exhausted of string
      (** out of memory under the hard heap limit (after the configured
          recovery), or an injected failure under the trap policy *)

let describe = function
  | Ran r -> Printf.sprintf "ran (exit %d)" r.o_exit
  | Detected m -> "detected: " ^ m
  | Corrupted m -> "heap corruption: " ^ m
  | Limit m -> "resource limit: " ^ m
  | Exhausted m -> "heap exhausted: " ^ m

(** Execute a built program under a {!Request.t} — the canonical
    runner; every other entry point is sugar over this one. *)
let exec ?gc_point_sink ?telemetry ?(census = false) (r : Request.t)
    (b : Build.built) : outcome =
  let machine = r.Request.machine in
  let dc = Machine.Vm.default_config ~machine () in
  let config =
    {
      dc with
      Machine.Vm.vm_gc_schedule = r.Request.schedule;
      Machine.Vm.vm_check_integrity = r.Request.check_integrity;
      Machine.Vm.vm_final_collect = r.Request.final_collect;
      Machine.Vm.vm_max_instrs =
        Option.value ~default:dc.Machine.Vm.vm_max_instrs r.Request.max_instrs;
      Machine.Vm.vm_max_heap_bytes =
        Option.value ~default:dc.Machine.Vm.vm_max_heap_bytes
          r.Request.max_heap;
      Machine.Vm.vm_gc_threshold =
        Option.value ~default:dc.Machine.Vm.vm_gc_threshold
          r.Request.gc_threshold;
      Machine.Vm.vm_gc_mode = r.Request.gc_mode;
      Machine.Vm.vm_gc_pause_budget =
        Option.value ~default:dc.Machine.Vm.vm_gc_pause_budget
          r.Request.gc_pause_budget;
      Machine.Vm.vm_nursery_pages =
        Option.value ~default:dc.Machine.Vm.vm_nursery_pages
          r.Request.nursery_pages;
      Machine.Vm.vm_gc_point_sink = gc_point_sink;
      Machine.Vm.vm_telemetry = telemetry;
      Machine.Vm.vm_heap_limit_words = r.Request.heap_limit;
      Machine.Vm.vm_oom_policy = r.Request.oom_policy;
      Machine.Vm.vm_alloc_failpoints = r.Request.alloc_failpoints;
      Machine.Vm.vm_census = census;
    }
  in
  try
    let r = Machine.Vm.run ~config b.Build.b_ir in
    Ran
      {
        o_cycles = r.Machine.Vm.r_cycles;
        o_instrs = r.Machine.Vm.r_instrs;
        o_size = b.Build.b_size;
        o_output = r.Machine.Vm.r_output;
        o_exit = r.Machine.Vm.r_exit;
        o_gc_count = r.Machine.Vm.r_gc_count;
        o_gc_points = r.Machine.Vm.r_gc_points;
        o_live_objects = r.Machine.Vm.r_live_objects;
        o_live_bytes = r.Machine.Vm.r_live_bytes;
        o_emergency = r.Machine.Vm.r_heap.Gcheap.Heap.emergency_collections;
        o_injected_failures =
          r.Machine.Vm.r_heap.Gcheap.Heap.injected_failures;
        o_allocs = r.Machine.Vm.r_heap.Gcheap.Heap.objects_allocated;
        o_increments = r.Machine.Vm.r_heap.Gcheap.Heap.increments;
        o_inc_max_pause = r.Machine.Vm.r_heap.Gcheap.Heap.inc_max_pause_words;
        o_inc_overruns = r.Machine.Vm.r_heap.Gcheap.Heap.budget_overruns;
        o_gc_max_pause_words = r.Machine.Vm.r_gc_max_pause_words;
        o_gc_total_pause_words = r.Machine.Vm.r_gc_total_pause_words;
        o_census = r.Machine.Vm.r_census;
      }
  with
  | Machine.Vm.Fault msg -> Detected msg
  | Gcheap.Heap.Heap_exhausted msg -> Exhausted msg
  | Machine.Vm.Trap (kind, msg) ->
      Limit (Printf.sprintf "%s: %s" (Machine.Vm.trap_kind_name kind) msg)
  | Gcheap.Heap.Heap_corruption vs ->
      Corrupted
        (String.concat "; "
           (List.map
              (fun v -> Format.asprintf "%a" Gcheap.Heap.pp_violation v)
              vs))

(** Percentage slowdown relative to a baseline cycle count, rendered as in
    the paper's tables. *)
let slowdown_cell ~base_cycles (o : outcome) : string =
  match o with
  | Detected _ -> "<fails>"
  | Corrupted _ -> "<corrupt>"
  | Limit _ -> "<limit>"
  | Exhausted _ -> "<oom>"
  | Ran r ->
      let pct =
        100.0 *. float_of_int (r.o_cycles - base_cycles)
        /. float_of_int base_cycles
      in
      Printf.sprintf "%.0f%%" pct

let size_cell ~base_size (o : outcome) : string =
  match o with
  | Detected _ | Corrupted _ | Limit _ | Exhausted _ -> "-"
  | Ran r ->
      let pct =
        100.0 *. float_of_int (r.o_size - base_size) /. float_of_int base_size
      in
      Printf.sprintf "%.0f%%" pct

let cycles = function Ran r -> Some r.o_cycles | _ -> None

let output = function Ran r -> Some r.o_output | _ -> None

exception Baseline_failed of string

let base_cycles_exn = function
  | Ran r -> r.o_cycles
  | (Detected _ | Corrupted _ | Limit _ | Exhausted _) as o ->
      raise (Baseline_failed (describe o))

(* The census record lives in [Gcheap] (which has no JSON dependency);
   its wire rendering lives here, next to the layer that samples it. *)
let census_to_json (c : Gcheap.Census.t) : Telemetry.Json.t =
  let module Json = Telemetry.Json in
  Json.Obj
    [
      ("collections", Json.Int c.Gcheap.Census.cn_collections);
      ("phase", Json.Str c.Gcheap.Census.cn_phase);
      ( "classes",
        Json.List
          (List.map
             (fun (r : Gcheap.Census.class_row) ->
               Json.Obj
                 [
                   ("size", Json.Int r.Gcheap.Census.cr_size);
                   ("blocks", Json.Int r.Gcheap.Census.cr_blocks);
                   ("slots", Json.Int r.Gcheap.Census.cr_slots);
                   ("allocated", Json.Int r.Gcheap.Census.cr_allocated);
                 ])
             c.Gcheap.Census.cn_classes) );
      ( "free_page_pool",
        Json.Obj
          [
            ("runs", Json.Int c.Gcheap.Census.cn_free_page_runs);
            ("pages", Json.Int c.Gcheap.Census.cn_free_pages);
          ] );
      ( "ages",
        Json.List
          (Array.to_list
             (Array.map (fun n -> Json.Int n) c.Gcheap.Census.cn_age)) );
      ("young", Json.Int c.Gcheap.Census.cn_young);
      ("old", Json.Int c.Gcheap.Census.cn_old);
      ( "cards",
        Json.Obj
          [
            ("dirty", Json.Int c.Gcheap.Census.cn_dirty_cards);
            ("total", Json.Int c.Gcheap.Census.cn_cards);
            ("dirty_ratio", Json.Float (Gcheap.Census.dirty_ratio c));
          ] );
      ( "nursery",
        Json.Obj
          [
            ("pages", Json.Int c.Gcheap.Census.cn_nursery_pages);
            ("slots", Json.Int c.Gcheap.Census.cn_nursery_slots);
          ] );
      ("live_words", Json.Int c.Gcheap.Census.cn_live_words);
      ("committed_words", Json.Int c.Gcheap.Census.cn_committed_words);
      ("fragmentation", Json.Float (Gcheap.Census.fragmentation c));
    ]
