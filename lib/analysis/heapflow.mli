(** Flow-sensitive heapness: per program point, the set of variables that
    may hold a pointer into the collected heap.

    This is the flow-sensitive refinement of the flow-insensitive
    per-function verdict: a cursor that walks a local buffer and is later
    retargeted at a heap object is heapy only downstream of the
    retargeting assignment, so its earlier dereferences need no
    KEEP_LIVE.  A forward may-analysis over the powerset-of-variables
    lattice: assignments of possibly-heap values add the target; a single
    unconditional whole-statement assignment of a provably non-heap value
    is a strong update that removes it.

    Soundness guards: escaping (address-taken) variables and globals are
    always heapy — any store or call may retarget them; parameters start
    heapy at function entry; queries about within-statement state answer
    from the union of the statement's in- and out-state, so values that
    are heapy only transiently during one statement's evaluation are
    still reported heapy. *)

type t

val analyze :
  ?cfg:Cfg.t ->
  escape:Escape.t ->
  global:(string -> bool) ->
  Csyntax.Ast.func ->
  t
(** [cfg] lets several clients share one graph (points are compared by
    id); by default a fresh one is built from the function body. *)

val may_be_heap : t -> Cfg.point option -> string -> bool
(** May [v] hold a heap pointer during the evaluation of [point]?
    Conservative ([true]) for unknown points, unreached points, escaping
    variables and globals. *)

val cfg : t -> Cfg.t
