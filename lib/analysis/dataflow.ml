(** Worklist fixpoint solver; see the interface. *)

module type DOMAIN = sig
  type t

  val bottom : t

  val equal : t -> t -> bool

  val join : t -> t -> t
end

type direction = Forward | Backward

module VarSet = Set.Make (String)

module SetDomain = struct
  type t = VarSet.t

  let bottom = VarSet.empty

  let equal = VarSet.equal

  let join = VarSet.union
end

module Make (D : DOMAIN) = struct
  type result = {
    df_input : D.t array;
    df_output : D.t array;
    df_reached : bool array;
  }

  let solve ~dir ~boundary ~transfer (cfg : Cfg.t) : result =
    let pts = Cfg.points cfg in
    let n = Array.length pts in
    let input = Array.make n D.bottom in
    let output = Array.make n D.bottom in
    let reached = Array.make n false in
    let start =
      match dir with Forward -> Cfg.entry cfg | Backward -> Cfg.exit_ cfg
    in
    let next p =
      match dir with Forward -> p.Cfg.pt_succ | Backward -> p.Cfg.pt_pred
    in
    let prev p =
      match dir with Forward -> p.Cfg.pt_pred | Backward -> p.Cfg.pt_succ
    in
    let work = Queue.create () in
    let queued = Array.make n false in
    Queue.add start work;
    queued.(start) <- true;
    while not (Queue.is_empty work) do
      let i = Queue.pop work in
      queued.(i) <- false;
      let p = pts.(i) in
      let inp =
        List.fold_left
          (fun acc q -> if reached.(q) then D.join acc output.(q) else acc)
          (if i = start then boundary else D.bottom)
          (prev p)
      in
      let out = transfer p inp in
      let first = not reached.(i) in
      reached.(i) <- true;
      input.(i) <- inp;
      if first || not (D.equal out output.(i)) then begin
        output.(i) <- out;
        List.iter
          (fun s ->
            if not queued.(s) then begin
              queued.(s) <- true;
              Queue.add s work
            end)
          (next p)
      end
    done;
    { df_input = input; df_output = output; df_reached = reached }
end
