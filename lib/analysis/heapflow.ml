(** Flow-sensitive may-point-to-heap; see the interface. *)

open Csyntax
module VS = Dataflow.VarSet
module Solver = Dataflow.Make (Dataflow.SetDomain)

type t = {
  hf_cfg : Cfg.t;
  hf_res : Solver.result;
  hf_esc : Escape.t;
  hf_global : string -> bool;
}

let cfg t = t.hf_cfg

(* Is the value of [e] possibly a heap pointer, with variables resolved
   against [state]?  The expression shapes mirror the flow-insensitive
   Heapness classification: call results and loads from memory are heapy,
   addresses of locals are not. *)
let rec heapy esc global state (e : Ast.expr) =
  let heapy = heapy esc global state in
  let heapy_addr = heapy_addr esc global state in
  match e.Ast.edesc with
  | Ast.IntLit _ | Ast.CharLit _ | Ast.FloatLit _ | Ast.SizeofType _
  | Ast.SizeofExpr _ | Ast.StrLit _ ->
      false
  | Ast.Var v -> VS.mem v state || global v || Escape.address_taken esc v
  | Ast.Call (_, _) | Ast.RuntimeCall (_, _) -> true
  | Ast.Deref _ -> true (* a pointer loaded from memory *)
  | Ast.Index (_, _) | Ast.Arrow (_, _) | Ast.Field (_, _) -> (
      match e.Ast.ety with
      | Some (Ctype.Array _) -> heapy_addr e (* the element's address *)
      | _ -> true (* scalar load from memory *))
  | Ast.AddrOf lv -> heapy_addr lv
  | Ast.Binop ((Ast.Add | Ast.Sub), a, b) -> heapy a || heapy b
  | Ast.Binop (_, _, _) | Ast.Unop (_, _) -> false
  | Ast.Cast (_, x) -> heapy x
  | Ast.Cond (_, a, b) -> heapy a || heapy b
  | Ast.Comma (_, b) -> heapy b
  | Ast.Assign (_, r) -> heapy r
  | Ast.OpAssign (_, l, _) | Ast.Incr (_, l) -> heapy l
  | Ast.KeepLive (x, _) -> heapy x

(* is the address of lvalue [lv] possibly inside a heap object? *)
and heapy_addr esc global state (lv : Ast.expr) =
  let heapy = heapy esc global state in
  let heapy_addr = heapy_addr esc global state in
  match lv.Ast.edesc with
  | Ast.Var _ -> false (* stack or static storage *)
  | Ast.Deref a -> heapy a
  | Ast.Index (a, _) -> (
      match a.Ast.ety with
      | Some (Ctype.Array _) -> heapy_addr a
      | _ -> heapy a)
  | Ast.Arrow (p, _) -> heapy p
  | Ast.Field (b, _) -> heapy_addr b
  | Ast.Cast (_, b) -> heapy_addr b
  | _ -> true

(* All assignments [v = rhs] to simple variables anywhere in [e],
   including the decl binding when the point is a declaration. *)
let var_assigns_of_point p =
  let of_expr acc e =
    Ast.fold_expr
      (fun acc x ->
        match x.Ast.edesc with
        | Ast.Assign ({ Ast.edesc = Ast.Var v; _ }, rhs) -> (v, rhs) :: acc
        | _ -> acc)
      acc e
  in
  let inner = List.fold_left of_expr [] (Cfg.exprs_of p) in
  match Cfg.binding_of p with
  | Some (x, Some init) -> (x, init) :: inner
  | _ -> inner

let analyze ?cfg ~escape ~global (f : Ast.func) : t =
  let cfg = match cfg with Some c -> c | None -> Cfg.build f in
  (* a variable is worth tracking only if assignments can retarget it
     predictably: not a global, not address-taken *)
  let tracked v = not (global v || Escape.address_taken escape v) in
  let transfer p state =
    let assigns = var_assigns_of_point p in
    (* may-additions to a fixpoint: an assignment's rhs is evaluated
       under the state including any earlier additions at this point *)
    let state' = ref state in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (v, rhs) ->
          if
            tracked v
            && (not (VS.mem v !state'))
            && heapy escape global !state' rhs
          then begin
            state' := VS.add v !state';
            changed := true
          end)
        assigns
    done;
    (* strong update: a whole-statement assignment or initializer of a
       provably non-heap value removes the target — but only when it is
       the sole assignment to that variable at this point, so values that
       are heapy transiently within the statement stay in the out-state
       (queries look at in ∪ out) *)
    let top_binding =
      match Cfg.binding_of p with
      | Some (x, Some init) -> Some (x, init)
      | Some (_, None) -> None
      | None -> (
          match Cfg.exprs_of p with
          | [ { Ast.edesc = Ast.Assign ({ Ast.edesc = Ast.Var v; _ }, rhs); _ } ]
            ->
              Some (v, rhs)
          | _ -> None)
    in
    match top_binding with
    | Some (v, rhs)
      when tracked v
           && List.length (List.filter (fun (x, _) -> x = v) assigns) <= 1
           && not (heapy escape global !state' rhs) ->
        VS.remove v !state'
    | _ -> !state'
  in
  (* parameters may point anywhere at entry *)
  let boundary =
    List.fold_left
      (fun acc (name, _) -> VS.add name acc)
      VS.empty f.Ast.f_params
  in
  let res = Solver.solve ~dir:Dataflow.Forward ~boundary ~transfer cfg in
  { hf_cfg = cfg; hf_res = res; hf_esc = escape; hf_global = global }

let may_be_heap t (pt : Cfg.point option) v =
  if t.hf_global v || Escape.address_taken t.hf_esc v then true
  else
    match pt with
    | None -> true
    | Some p ->
        let id = p.Cfg.pt_id in
        if not t.hf_res.Solver.df_reached.(id) then true
        else
          VS.mem v t.hf_res.Solver.df_input.(id)
          || VS.mem v t.hf_res.Solver.df_output.(id)
