(** Address-taken / escape analysis; see the interface. *)

open Csyntax

type t = {
  esc_addr : (string, unit) Hashtbl.t;
  esc_params : (string, unit) Hashtbl.t;
  esc_global : string -> bool;
}

let analyze ~global (f : Ast.func) : t =
  let addr = Hashtbl.create 8 in
  let on_expr () (e : Ast.expr) =
    match e.Ast.edesc with
    | Ast.AddrOf inner ->
        (* Walk to the addressed storage's root variable.  Indexing only
           stays within the variable's own storage for array types: for a
           pointer p, [&p[i]] addresses p's target, not p. *)
        let rec root (x : Ast.expr) =
          match x.Ast.edesc with
          | Ast.Var v -> Hashtbl.replace addr v ()
          | Ast.Field (b, _) | Ast.Cast (_, b) -> root b
          | Ast.Index (b, _) -> (
              match b.Ast.ety with
              | Some (Ctype.Array _) -> root b
              | _ -> ())
          | _ -> ()
        in
        root inner
    | _ -> ()
  in
  ignore (Ast.fold_stmt_exprs on_expr () f.Ast.f_body);
  let params = Hashtbl.create 8 in
  List.iter (fun (name, _) -> Hashtbl.replace params name ()) f.Ast.f_params;
  { esc_addr = addr; esc_params = params; esc_global = global }

let address_taken t v = Hashtbl.mem t.esc_addr v

let escapes t v = Hashtbl.mem t.esc_addr v || t.esc_global v

let is_param t v = Hashtbl.mem t.esc_params v
