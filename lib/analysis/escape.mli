(** Address-taken / escape analysis for one function.

    A variable whose address is taken can be written through memory by
    any store or call, so neither the flow-sensitive heapness nor the
    liveness client may reason about its value: both treat escaping
    variables with their most conservative answer.  Globals escape by
    definition (any callee may store heap pointers into them). *)

type t

val analyze : global:(string -> bool) -> Csyntax.Ast.func -> t

val address_taken : t -> string -> bool
(** The address of the variable itself is taken somewhere in the
    function ([&x], [&x.f], [&arr\[i\]] for an array variable — not
    [&p\[i\]] for a pointer [p], whose target, not [p], is addressed). *)

val escapes : t -> string -> bool
(** Address-taken or global. *)

val is_param : t -> string -> bool
