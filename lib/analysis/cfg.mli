(** Statement-granularity control-flow graph over a mini-C function body.

    Points are the evaluated top-level expressions of the function —
    expression statements, declaration initializers, the condition of
    every [if]/[while]/[do]/[for], the init and step parts of [for], and
    return values — plus a synthetic entry, exit, and one join per loop
    head.  Edges follow mini-C's structured control flow, including
    [break]/[continue] and loop back edges.

    Top-level expressions are mapped back to their point by {e physical}
    identity: the type checker and {!Normalize} mutate nodes in place, so
    the statement expressions an annotator walks are the very nodes the
    CFG was built from. *)

type payload =
  | Entry
  | Exit
  | Join  (** synthetic loop-head merge, evaluates nothing *)
  | Expr of Csyntax.Ast.expr * bool
      (** a top-level evaluated expression; the flag says whether its
          {e value} is demanded by control flow (conditions) rather than
          discarded (expression statements, [for] init/step) *)
  | Decl of Csyntax.Ast.decl  (** declaration, initializer evaluated here *)
  | Ret of Csyntax.Ast.expr option

type point = {
  pt_id : int;
  pt_payload : payload;
  mutable pt_succ : int list;
  mutable pt_pred : int list;
}

type t

val build : Csyntax.Ast.func -> t

val points : t -> point array
(** Indexed by [pt_id]. *)

val entry : t -> int

val exit_ : t -> int

val point_of_expr : t -> Csyntax.Ast.expr -> point option
(** The point evaluating this top-level expression, by physical identity
    ([None] for sub-expressions and synthesized nodes). *)

val exprs_of : point -> Csyntax.Ast.expr list
(** The expressions evaluated at this point (0 or 1). *)

val binding_of : point -> (string * Csyntax.Ast.expr option) option
(** [Some (x, init)] when the point is a declaration of [x]. *)

val pp : Format.formatter -> t -> unit
(** Debug rendering: one line per point with its successors. *)
