(** Per-function analysis driver; see the interface. *)

open Csyntax
module VS = Dataflow.VarSet

type t = {
  sm_cfg : Cfg.t;
  sm_esc : Escape.t;
  sm_heap : Heapflow.t;
  sm_live : Ptr_live.t;
  sm_global : string -> bool;
  sm_known : (string, unit) Hashtbl.t;
      (** the variable universe the analyses saw; anything else (e.g. a
          temporary introduced after analysis time) gets the conservative
          answer from both queries *)
}

let analyze ~global (f : Ast.func) : t =
  let cfg = Cfg.build f in
  let esc = Escape.analyze ~global f in
  let heap = Heapflow.analyze ~cfg ~escape:esc ~global f in
  let live = Ptr_live.analyze ~cfg f in
  let known = Hashtbl.create 32 in
  List.iter (fun (name, _) -> Hashtbl.replace known name ()) f.Ast.f_params;
  Ast.iter_stmts
    (fun s ->
      match s.Ast.sdesc with
      | Ast.Sdecl d -> Hashtbl.replace known d.Ast.d_name ()
      | _ -> ())
    f.Ast.f_body;
  ignore
    (Ast.fold_stmt_exprs
       (fun () e ->
         match e.Ast.edesc with
         | Ast.Var v -> Hashtbl.replace known v ()
         | _ -> ())
       () f.Ast.f_body);
  {
    sm_cfg = cfg;
    sm_esc = esc;
    sm_heap = heap;
    sm_live = live;
    sm_global = global;
    sm_known = known;
  }

let point_of t e = Cfg.point_of_expr t.sm_cfg e

let escape t = t.sm_esc

let heapflow t = t.sm_heap

let liveness t = t.sm_live

let known t v = Hashtbl.mem t.sm_known v

let may_be_heap t pt v =
  if not (known t v) then true else Heapflow.may_be_heap t.sm_heap pt v

(* is [def] just an advance of [v] within its current object?
   [v++], [v--], [v += n], [v -= n], [v = v ± n] (through casts) *)
let self_advance v (def : Ast.expr) =
  let rec is_v (e : Ast.expr) =
    match e.Ast.edesc with
    | Ast.Var x -> x = v
    | Ast.Cast (_, x) -> is_v x
    | _ -> false
  in
  match def.Ast.edesc with
  | Ast.Incr (_, lv) -> is_v lv
  | Ast.OpAssign ((Ast.Add | Ast.Sub), lv, _) -> is_v lv
  | Ast.Assign (lv, rhs) -> (
      is_v lv
      &&
      let rec adv (e : Ast.expr) =
        match e.Ast.edesc with
        | Ast.Binop ((Ast.Add | Ast.Sub), a, b) -> is_v a || is_v b
        | Ast.Cast (_, x) -> adv x
        | _ -> false
      in
      adv rhs)
  | _ -> false

let live_across t pt v =
  match pt with
  | None -> false
  | Some p ->
      known t v
      && (not (Escape.escapes t.sm_esc v))
      && (not (t.sm_global v))
      && VS.mem v (Ptr_live.live_out t.sm_live p)
      && List.for_all
           (fun (x, def) ->
             x <> v
             || match def with Some d -> self_advance v d | None -> false)
           (Ptr_live.defs_of p)
