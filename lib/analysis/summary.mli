(** Per-function driver for the dataflow clients, and the two queries an
    annotator needs to decide whether a KEEP_LIVE site can be suppressed.

    Both queries answer conservatively — "must annotate" — for variables
    the analysis has never seen (e.g. temporaries introduced after
    analysis time), for escaping variables and globals, for unknown or
    unreachable program points. *)

type t

val analyze : global:(string -> bool) -> Csyntax.Ast.func -> t
(** Run escape, flow-sensitive heapness and liveness over one function
    (the function must be type-checked; run it after {!Normalize} so the
    analyzed nodes are the ones the annotator visits). *)

val point_of : t -> Csyntax.Ast.expr -> Cfg.point option
(** The CFG point evaluating this top-level statement expression, by
    physical identity. *)

val may_be_heap : t -> Cfg.point option -> string -> bool
(** May the variable hold a heap pointer during the point's evaluation?
    [true] unless the flow-sensitive heapness proves otherwise. *)

val live_across : t -> Cfg.point option -> string -> bool
(** Is the variable's object guaranteed reachable through the variable
    itself for the whole evaluation of the point?  Requires: a local,
    non-escaping variable, live out of the point, whose definitions at
    the point (if any) only advance it within its object
    ([p++], [p += n], [p = p + n]) — then the variable's register or
    stack slot roots the object at every collection point in the
    statement, and the KEEP_LIVE is redundant. *)

val escape : t -> Escape.t

val heapflow : t -> Heapflow.t

val liveness : t -> Ptr_live.t
