(** Demand-driven backward liveness; see the interface. *)

open Csyntax
module VS = Dataflow.VarSet
module Solver = Dataflow.Make (Dataflow.SetDomain)

type t = { pl_cfg : Cfg.t; pl_res : Solver.result }

let cfg t = t.pl_cfg

(* does evaluating [e] have side effects the optimizer must preserve? *)
let has_effects (e : Ast.expr) =
  Ast.fold_expr
    (fun acc x ->
      acc
      ||
      match x.Ast.edesc with
      | Ast.Call (_, _) | Ast.RuntimeCall (_, _) | Ast.Assign (_, _)
      | Ast.OpAssign (_, _, _) | Ast.Incr (_, _) ->
          true
      | _ -> false)
    false e

(* The gen set of [e] against the point's live-out set [out].

   [demanded] says whether the value of [e] survives optimization: a use
   contributes to liveness only if it is demanded, otherwise dead-code
   elimination may delete the computation and the use with it — and a
   suppression justified by such a use would be unsound.  Side-effecting
   sub-expressions demand their own operands (calls, stores), so they
   contribute regardless of the surrounding demand. *)
let rec gen ~demanded out acc (e : Ast.expr) =
  let self = gen out in
  match e.Ast.edesc with
  | Ast.IntLit _ | Ast.CharLit _ | Ast.StrLit _ | Ast.FloatLit _
  | Ast.SizeofType _ | Ast.SizeofExpr _ ->
      acc
  | Ast.Var v -> if demanded then VS.add v acc else acc
  | Ast.Unop (_, a) | Ast.Cast (_, a) -> self ~demanded acc a
  | Ast.Binop ((Ast.LogAnd | Ast.LogOr), a, b) ->
      (* [a] controls whether [b]'s effects run *)
      let acc = self ~demanded:(demanded || has_effects b) acc a in
      self ~demanded acc b
  | Ast.Binop (_, a, b) -> self ~demanded (self ~demanded acc a) b
  | Ast.Assign ({ Ast.edesc = Ast.Var v; _ }, rhs) ->
      self ~demanded:(demanded || VS.mem v out) acc rhs
  | Ast.Assign (lv, rhs) ->
      (* a store to memory always happens: address and value demanded *)
      let acc = gen_addr out acc lv in
      self ~demanded:true acc rhs
  | Ast.OpAssign (_, { Ast.edesc = Ast.Var v; _ }, rhs) ->
      let d = demanded || VS.mem v out in
      let acc = if d then VS.add v acc else acc in
      self ~demanded:d acc rhs
  | Ast.OpAssign (_, lv, rhs) ->
      let acc = gen_addr out acc lv in
      self ~demanded:true acc rhs
  | Ast.Incr (_, { Ast.edesc = Ast.Var v; _ }) ->
      if demanded || VS.mem v out then VS.add v acc else acc
  | Ast.Incr (_, lv) -> gen_addr out acc lv
  | Ast.Deref a ->
      (* a load whose value is unused is removable with its address *)
      self ~demanded acc a
  | Ast.Index (a, b) -> self ~demanded (self ~demanded acc a) b
  | Ast.Arrow (a, _) | Ast.Field (a, _) -> self ~demanded acc a
  | Ast.AddrOf lv -> self ~demanded acc lv
  | Ast.Call (_, args) ->
      List.fold_left (fun acc a -> self ~demanded:true acc a) acc args
  | Ast.Cond (c, a, b) ->
      let acc =
        self ~demanded:(demanded || has_effects a || has_effects b) acc c
      in
      self ~demanded (self ~demanded acc a) b
  | Ast.Comma (a, b) -> self ~demanded (self ~demanded:false acc a) b
  | Ast.KeepLive (a, Some b) ->
      (* post-annotation nodes (defensive): both operands are real uses *)
      self ~demanded:true (self ~demanded:true acc a) b
  | Ast.KeepLive (a, None) -> self ~demanded:true acc a
  | Ast.RuntimeCall (_, args) ->
      List.fold_left (fun acc a -> self ~demanded:true acc a) acc args

(* the address computation feeding a store: always demanded *)
and gen_addr out acc (lv : Ast.expr) = gen ~demanded:true out acc lv

let defs_of (p : Cfg.point) : (string * Ast.expr option) list =
  let of_expr acc e =
    Ast.fold_expr
      (fun acc x ->
        match x.Ast.edesc with
        | Ast.Assign ({ Ast.edesc = Ast.Var v; _ }, _)
        | Ast.OpAssign (_, { Ast.edesc = Ast.Var v; _ }, _)
        | Ast.Incr (_, { Ast.edesc = Ast.Var v; _ }) ->
            (v, Some x) :: acc
        | _ -> acc)
      acc e
  in
  let inner = List.fold_left of_expr [] (Cfg.exprs_of p) in
  match Cfg.binding_of p with
  | Some (x, _) -> (x, None) :: inner
  | None -> inner

let analyze ?cfg (f : Ast.func) : t =
  let cfg = match cfg with Some c -> c | None -> Cfg.build f in
  let transfer p out =
    (* kill: every definition, conditional or not (over-kill is the safe
       direction for suppression) *)
    let killed =
      List.fold_left (fun acc (v, _) -> VS.remove v acc) out (defs_of p)
    in
    let demanded_value =
      match p.Cfg.pt_payload with
      | Cfg.Expr (_, demanded) -> demanded
      | Cfg.Ret (Some _) -> true
      | _ -> false
    in
    (* a declaration initializer is an assignment to the declared name:
       its value is demanded only if the name is live-out *)
    match Cfg.binding_of p with
    | Some (x, Some init) -> gen ~demanded:(VS.mem x out) out killed init
    | Some (_, None) -> killed
    | None ->
        List.fold_left
          (fun acc e -> gen ~demanded:demanded_value out acc e)
          killed (Cfg.exprs_of p)
  in
  let res =
    Solver.solve ~dir:Dataflow.Backward ~boundary:VS.empty ~transfer cfg
  in
  { pl_cfg = cfg; pl_res = res }

let live_out t (p : Cfg.point) =
  let id = p.Cfg.pt_id in
  if not t.pl_res.Solver.df_reached.(id) then VS.empty
  else t.pl_res.Solver.df_input.(id)
