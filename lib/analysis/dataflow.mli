(** Generic monotone dataflow framework: a worklist fixpoint over a
    {!Cfg.t}, parameterized by a join-semilattice domain and a transfer
    function, in either direction.

    The client guarantees monotonicity of [transfer] and finite ascending
    chains in the domain; the solver then terminates with the least
    fixpoint reachable from the boundary value. *)

module type DOMAIN = sig
  type t

  val bottom : t

  val equal : t -> t -> bool

  val join : t -> t -> t
end

type direction = Forward | Backward

module VarSet : Set.S with type elt = string

module SetDomain : DOMAIN with type t = VarSet.t
(** The common powerset-of-variables lattice: bottom = empty, join =
    union. *)

module Make (D : DOMAIN) : sig
  type result = {
    df_input : D.t array;
        (** per point: join over the direction-predecessors' outputs (the
            state {e before} the point going Forward, {e after} it going
            Backward) *)
    df_output : D.t array;  (** per point: [transfer] applied to the input *)
    df_reached : bool array;
        (** points never visited from the boundary (unreachable code, or
            loops that never terminate when solving Backward) keep
            [D.bottom]; clients must treat them conservatively *)
  }

  val solve :
    dir:direction ->
    boundary:D.t ->
    transfer:(Cfg.point -> D.t -> D.t) ->
    Cfg.t ->
    result
  (** Worklist fixpoint seeded at the entry (Forward) or exit (Backward)
      point with [boundary]. *)
end
