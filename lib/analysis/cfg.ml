(** Statement-granularity CFG over a mini-C function body.  See the
    interface for the point/edge discipline. *)

open Csyntax

type payload =
  | Entry
  | Exit
  | Join
  | Expr of Ast.expr * bool
  | Decl of Ast.decl
  | Ret of Ast.expr option

type point = {
  pt_id : int;
  pt_payload : payload;
  mutable pt_succ : int list;
  mutable pt_pred : int list;
}

(* Top-level expressions are keyed by physical identity: structurally
   equal nodes at different program points must map to different
   points. *)
module ExprTbl = Hashtbl.Make (struct
  type t = Ast.expr

  let equal = ( == )

  let hash = Hashtbl.hash
end)

type t = {
  cfg_points : point array;
  cfg_entry : int;
  cfg_exit : int;
  cfg_of_expr : int ExprTbl.t;
}

let points t = t.cfg_points

let entry t = t.cfg_entry

let exit_ t = t.cfg_exit

let point_of_expr t e =
  match ExprTbl.find_opt t.cfg_of_expr e with
  | Some id -> Some t.cfg_points.(id)
  | None -> None

let exprs_of p =
  match p.pt_payload with
  | Expr (e, _) -> [ e ]
  | Decl { Ast.d_init = Some e; _ } -> [ e ]
  | Ret (Some e) -> [ e ]
  | Entry | Exit | Join | Decl _ | Ret None -> []

let binding_of p =
  match p.pt_payload with
  | Decl d -> Some (d.Ast.d_name, d.Ast.d_init)
  | _ -> None

let build (f : Ast.func) : t =
  let acc = ref [] and n = ref 0 in
  let of_expr = ExprTbl.create 64 in
  let add payload =
    let p = { pt_id = !n; pt_payload = payload; pt_succ = []; pt_pred = [] } in
    incr n;
    acc := p :: !acc;
    (match payload with
    | Expr (e, _) -> ExprTbl.replace of_expr e p.pt_id
    | Decl { Ast.d_init = Some e; _ } -> ExprTbl.replace of_expr e p.pt_id
    | Ret (Some e) -> ExprTbl.replace of_expr e p.pt_id
    | Entry | Exit | Join | Decl _ | Ret None -> ());
    p.pt_id
  in
  let edges = ref [] in
  let edge a b = edges := (a, b) :: !edges in
  let connect frontier p = List.iter (fun q -> edge q p) frontier in
  let entry = add Entry in
  let exit_ = add Exit in
  (* [stmt] threads the frontier: the set of points whose fall-through
     successor is whatever comes next.  [brk] collects frontiers that jump
     to the enclosing loop's exit; [cont] is that loop's continue target. *)
  let rec stmt frontier ~brk ~cont (s : Ast.stmt) : int list =
    match s.Ast.sdesc with
    | Ast.Sexpr e ->
        let p = add (Expr (e, false)) in
        connect frontier p;
        [ p ]
    | Ast.Sdecl d ->
        let p = add (Decl d) in
        connect frontier p;
        [ p ]
    | Ast.Sreturn e ->
        let p = add (Ret e) in
        connect frontier p;
        edge p exit_;
        []
    | Ast.Sbreak ->
        (match brk with Some b -> b := frontier @ !b | None -> ());
        []
    | Ast.Scontinue ->
        (match cont with
        | Some c -> List.iter (fun q -> edge q c) frontier
        | None -> ());
        []
    | Ast.Sempty -> frontier
    | Ast.Sblock ss ->
        List.fold_left (fun fr s -> stmt fr ~brk ~cont s) frontier ss
    | Ast.Sif (c, a, b) ->
        let pc = add (Expr (c, true)) in
        connect frontier pc;
        let fa = stmt [ pc ] ~brk ~cont a in
        (match b with
        | Some b -> fa @ stmt [ pc ] ~brk ~cont b
        | None -> pc :: fa)
    | Ast.Swhile (c, b) ->
        let pc = add (Expr (c, true)) in
        connect frontier pc;
        let breaks = ref [] in
        let fb = stmt [ pc ] ~brk:(Some breaks) ~cont:(Some pc) b in
        List.iter (fun q -> edge q pc) fb;
        pc :: !breaks
    | Ast.Sdowhile (b, c) ->
        let head = add Join in
        connect frontier head;
        let pc = add (Expr (c, true)) in
        let breaks = ref [] in
        let fb = stmt [ head ] ~brk:(Some breaks) ~cont:(Some pc) b in
        List.iter (fun q -> edge q pc) fb;
        edge pc head;
        pc :: !breaks
    | Ast.Sfor (i, c, st, b) ->
        let fi =
          match i with
          | Some e ->
              let p = add (Expr (e, false)) in
              connect frontier p;
              [ p ]
          | None -> frontier
        in
        let head = add Join in
        connect fi head;
        let pc = Option.map (fun e -> add (Expr (e, true))) c in
        let pst = Option.map (fun e -> add (Expr (e, false))) st in
        (match pc with Some p -> edge head p | None -> ());
        let body_preds = match pc with Some p -> [ p ] | None -> [ head ] in
        let cont_t =
          match pst with Some p -> p | None -> Option.value pc ~default:head
        in
        let breaks = ref [] in
        let fb = stmt body_preds ~brk:(Some breaks) ~cont:(Some cont_t) b in
        let tail =
          match pst with
          | Some p ->
              List.iter (fun q -> edge q p) fb;
              [ p ]
          | None -> fb
        in
        List.iter (fun q -> edge q head) tail;
        (match pc with Some p -> p :: !breaks | None -> !breaks)
  in
  let fout = stmt [ entry ] ~brk:None ~cont:None f.Ast.f_body in
  List.iter (fun q -> edge q exit_) fout;
  let arr = Array.make !n { pt_id = 0; pt_payload = Entry; pt_succ = []; pt_pred = [] } in
  List.iter (fun p -> arr.(p.pt_id) <- p) !acc;
  List.iter
    (fun (a, b) ->
      if not (List.mem b arr.(a).pt_succ) then begin
        arr.(a).pt_succ <- b :: arr.(a).pt_succ;
        arr.(b).pt_pred <- a :: arr.(b).pt_pred
      end)
    (List.rev !edges);
  { cfg_points = arr; cfg_entry = entry; cfg_exit = exit_; cfg_of_expr = of_expr }

let pp ppf t =
  Array.iter
    (fun p ->
      let name =
        match p.pt_payload with
        | Entry -> "entry"
        | Exit -> "exit"
        | Join -> "join"
        | Expr (e, demanded) ->
            Format.asprintf "%s%a" (if demanded then "cond " else "") Pretty.pp_expr e
        | Decl d -> Printf.sprintf "decl %s" d.Ast.d_name
        | Ret _ -> "return"
      in
      Format.fprintf ppf "%d: %s -> {%s}@." p.pt_id name
        (String.concat ", " (List.map string_of_int (List.rev p.pt_succ))))
    t.cfg_points
