(** Source-level variable liveness, tuned for KEEP_LIVE suppression.

    A backward may-analysis: [live_out point] is the set of variables
    whose current value may still be read on some path after the point.
    A base variable provably live across a dereference keeps its object
    reachable through its own register or stack slot — both are scanned
    as GC roots — so the dereference needs no KEEP_LIVE (the paper's
    optimization (1) generalized beyond pure copies).

    Because the suppression direction requires liveness to survive
    optimization, the gen set is {e demand-driven}, mirroring dead-code
    elimination: a use inside [x = e] counts only if [x] is itself
    live-out (or [e]'s evaluation is otherwise demanded — conditions,
    call arguments, stored values and addresses, return values).  Kills
    are any definition on the point, including conditional ones
    (over-killing under-approximates liveness, which only suppresses
    less). *)

type t

val analyze : ?cfg:Cfg.t -> Csyntax.Ast.func -> t
(** [cfg] lets several clients share one graph; by default a fresh one
    is built from the function body. *)

val live_out : t -> Cfg.point -> Dataflow.VarSet.t
(** Variables live after the point; empty for unreached points (so the
    suppression query fails conservatively there). *)

val defs_of : Cfg.point -> (string * Csyntax.Ast.expr option) list
(** Every simple-variable definition the point may perform, paired with
    the defining expression — the whole [Assign] / [OpAssign] / [Incr]
    node, or [None] for a declaration binding. *)

val cfg : t -> Cfg.t
